"""Tests for path-loss and link-state models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.pathloss import (
    NYC_28GHZ_LOS,
    NYC_28GHZ_NLOS,
    NYC_73GHZ_LOS,
    LinkState,
    NycPathLoss,
    NycPathLossParams,
    friis_path_loss_db,
)
from repro.exceptions import ValidationError


class TestFriis:
    def test_reference_value(self):
        """FSPL at 1 m, 28 GHz is ~61.4 dB (the NYC LOS alpha)."""
        assert friis_path_loss_db(1.0, 28e9) == pytest.approx(61.4, abs=0.2)

    def test_distance_scaling(self):
        """+20 dB per decade of distance."""
        near = friis_path_loss_db(10.0, 28e9)
        far = friis_path_loss_db(100.0, 28e9)
        assert far - near == pytest.approx(20.0)

    def test_frequency_scaling(self):
        """Higher carrier -> more isotropic loss (the paper's Sec. I point)."""
        assert friis_path_loss_db(100.0, 73e9) > friis_path_loss_db(100.0, 28e9)

    def test_invalid(self):
        with pytest.raises(ValidationError):
            friis_path_loss_db(0.0, 28e9)


class TestNycPathLoss:
    def test_state_probabilities_sum_to_one(self):
        model = NycPathLoss()
        for distance in (10.0, 50.0, 100.0, 200.0, 500.0):
            probs = model.state_probabilities(distance)
            assert sum(probs.values()) == pytest.approx(1.0)

    def test_los_probability_decreasing(self):
        model = NycPathLoss()
        los = [
            model.state_probabilities(d)[LinkState.LOS] for d in (10, 50, 100, 200)
        ]
        assert all(b <= a for a, b in zip(los, los[1:]))

    def test_outage_grows_with_distance(self):
        model = NycPathLoss()
        near = model.state_probabilities(50.0)[LinkState.OUTAGE]
        far = model.state_probabilities(400.0)[LinkState.OUTAGE]
        assert far > near

    def test_mean_path_loss_values(self):
        model = NycPathLoss()
        # alpha + 10 * beta * log10(d) at 100 m.
        assert model.mean_path_loss_db(100.0, LinkState.LOS) == pytest.approx(
            61.4 + 20.0 * 2.0
        )
        assert model.mean_path_loss_db(100.0, LinkState.NLOS) == pytest.approx(
            72.0 + 20.0 * 2.92
        )

    def test_outage_infinite_loss(self):
        assert NycPathLoss().mean_path_loss_db(100.0, LinkState.OUTAGE) == float("inf")

    def test_nlos_exceeds_los(self):
        model = NycPathLoss()
        for d in (20.0, 100.0, 300.0):
            assert model.mean_path_loss_db(d, LinkState.NLOS) > model.mean_path_loss_db(
                d, LinkState.LOS
            )

    def test_shadowing_statistics(self, rng):
        model = NycPathLoss()
        samples = [
            model.sample_path_loss_db(100.0, LinkState.LOS, rng) for _ in range(3000)
        ]
        median = model.mean_path_loss_db(100.0, LinkState.LOS)
        assert np.mean(samples) == pytest.approx(median, abs=0.5)
        assert np.std(samples) == pytest.approx(
            NYC_28GHZ_LOS.shadowing_sigma_db, rel=0.1
        )

    def test_sample_state_distribution(self, rng):
        model = NycPathLoss()
        states = [model.sample_state(100.0, rng) for _ in range(2000)]
        empirical = {
            state: states.count(state) / len(states)
            for state in LinkState
        }
        expected = model.state_probabilities(100.0)
        for state in LinkState:
            assert empirical[state] == pytest.approx(expected[state], abs=0.05)

    def test_73ghz_params(self):
        model = NycPathLoss(los=NYC_73GHZ_LOS)
        assert model.mean_path_loss_db(1.0, LinkState.LOS) == pytest.approx(69.8)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValidationError):
            NycPathLossParams(alpha_db=60.0, beta=2.0, shadowing_sigma_db=-1.0)
