"""Tests for beam codebooks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.codebook import Codebook
from repro.arrays.ula import UniformLinearArray
from repro.arrays.upa import UniformPlanarArray
from repro.exceptions import ValidationError
from repro.utils.linalg import random_psd


@pytest.fixture
def codebook() -> Codebook:
    return Codebook.grid(UniformPlanarArray(2, 4), n_azimuth=4, n_elevation=3)


class TestConstruction:
    def test_for_array_upa(self):
        cb = Codebook.for_array(UniformPlanarArray(4, 4))
        assert cb.num_beams == 16
        assert cb.grid_shape == (4, 4)

    def test_for_array_ula(self):
        cb = Codebook.for_array(UniformLinearArray(8))
        assert cb.num_beams == 8
        assert cb.grid_shape == (1, 8)

    def test_grid_oversampled(self):
        cb = Codebook.grid(UniformPlanarArray(2, 2), n_azimuth=5, n_elevation=3)
        assert cb.num_beams == 15
        assert cb.grid_shape == (3, 5)

    def test_unit_norm_columns(self, codebook):
        np.testing.assert_allclose(np.linalg.norm(codebook.vectors, axis=0), 1.0)

    def test_vectors_readonly(self, codebook):
        with pytest.raises(ValueError):
            codebook.vectors[0, 0] = 0.0

    def test_invalid_grid(self):
        with pytest.raises(ValidationError):
            Codebook.grid(UniformPlanarArray(2, 2), n_azimuth=0)

    def test_len_and_iter(self, codebook):
        beams = list(codebook)
        assert len(beams) == len(codebook) == 12
        np.testing.assert_allclose(beams[3], codebook.beam(3))

    def test_direction_accessor(self, codebook):
        d = codebook.direction(0)
        assert -np.pi / 2 <= d.azimuth <= np.pi / 2

    def test_bad_index(self, codebook):
        with pytest.raises(ValidationError):
            codebook.beam(12)
        with pytest.raises(ValidationError):
            codebook.direction(-1)


class TestGridTopology:
    def test_coords_roundtrip(self, codebook):
        for index in range(codebook.num_beams):
            row, col = codebook.grid_coords(index)
            assert codebook.beam_index(row, col) == index

    def test_neighbors_interior(self, codebook):
        # Grid is 3x4; beam (1, 1) has 4 neighbors.
        index = codebook.beam_index(1, 1)
        neighbors = codebook.neighbors(index)
        assert len(neighbors) == 4
        for n in neighbors:
            r, c = codebook.grid_coords(n)
            assert abs(r - 1) + abs(c - 1) == 1

    def test_neighbors_corner(self, codebook):
        assert len(codebook.neighbors(codebook.beam_index(0, 0))) == 2

    def test_neighbors_edge(self, codebook):
        assert len(codebook.neighbors(codebook.beam_index(0, 1))) == 3

    def test_snake_order_visits_all(self, codebook):
        order = codebook.snake_order(0)
        assert sorted(order) == list(range(codebook.num_beams))

    def test_snake_order_adjacent_steps(self, codebook):
        """From a corner start, consecutive snake entries are neighbors."""
        order = codebook.snake_order(0)
        for a, b in zip(order, order[1:]):
            assert b in codebook.neighbors(a)

    def test_snake_order_start_offset(self, codebook):
        order = codebook.snake_order(5)
        assert order[0] == 5
        assert sorted(order) == list(range(codebook.num_beams))


class TestGains:
    def test_gains_match_quadratic_form(self, codebook, rng):
        q = random_psd(codebook.array.num_elements, 2, rng)
        gains = codebook.gains(q)
        for k in range(codebook.num_beams):
            v = codebook.beam(k)
            assert gains[k] == pytest.approx(float(np.real(v.conj() @ q @ v)), abs=1e-10)

    def test_best_beam_is_argmax(self, codebook, rng):
        q = random_psd(codebook.array.num_elements, 2, rng)
        assert codebook.best_beam(q) == int(np.argmax(codebook.gains(q)))

    def test_best_beam_respects_exclude(self, codebook, rng):
        q = random_psd(codebook.array.num_elements, 2, rng)
        best = codebook.best_beam(q)
        second = codebook.best_beam(q, exclude={best})
        assert second != best

    def test_best_beam_all_excluded(self, codebook):
        with pytest.raises(ValidationError):
            codebook.best_beam(np.eye(8), exclude=set(range(codebook.num_beams)))

    def test_top_beams_sorted(self, codebook, rng):
        q = random_psd(codebook.array.num_elements, 3, rng)
        top = codebook.top_beams(q, 5)
        gains = codebook.gains(q)
        assert len(top) == 5
        assert all(gains[a] >= gains[b] - 1e-12 for a, b in zip(top, top[1:]))

    def test_top_beams_zero_count(self, codebook):
        assert codebook.top_beams(np.eye(8), 0) == []

    def test_top_beams_excess_count(self, codebook):
        with pytest.raises(ValidationError):
            codebook.top_beams(np.eye(8), codebook.num_beams + 1)

    def test_top_beams_excludes(self, codebook, rng):
        q = random_psd(codebook.array.num_elements, 2, rng)
        excluded = {0, 1, 2}
        top = codebook.top_beams(q, 4, exclude=excluded)
        assert not excluded.intersection(top)

    def test_steered_covariance_peaks_at_matching_beam(self):
        """A rank-1 covariance along beam k is maximized by beam k."""
        cb = Codebook.for_array(UniformPlanarArray(3, 3))
        for k in (0, 4, 8):
            v = cb.beam(k)
            q = np.outer(v, v.conj())
            assert cb.best_beam(q) == k


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    n_az=st.integers(1, 6),
    n_el=st.integers(1, 4),
)
def test_property_codebook_consistency(rows, cols, n_az, n_el):
    cb = Codebook.grid(UniformPlanarArray(rows, cols), n_azimuth=n_az, n_elevation=n_el)
    assert cb.num_beams == n_az * n_el
    assert sorted(cb.snake_order(0)) == list(range(cb.num_beams))
    np.testing.assert_allclose(np.linalg.norm(cb.vectors, axis=0), 1.0, atol=1e-9)
