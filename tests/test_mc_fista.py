"""Tests for the FISTA nuclear-norm solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mc.fista import fista_nuclear
from repro.mc.metrics import relative_error
from repro.mc.operators import EntryMask, QuadraticFormOperator
from repro.utils.linalg import random_psd

def _real_low_rank(rng, n1, n2, rank, scale=1.0):
    """A real low-rank matrix (complex PSD .real would double the rank)."""
    left = rng.normal(size=(n1, rank))
    right = rng.normal(size=(rank, n2))
    return scale * (left @ right) / rank


def _real_psd(rng, n, rank, scale=1.0):
    factors = rng.normal(size=(n, rank))
    return scale * (factors @ factors.T) / rank



class TestFistaWithMask:
    def test_denoising_recovery(self, rng):
        truth = _real_psd(rng, 20, 2, scale=20.0)
        mask = EntryMask.random((20, 20), 0.7, rng)
        result = fista_nuclear(mask, mask.observe(truth), mu=0.01, max_iterations=500)
        assert relative_error(result.solution.real, truth) < 0.15

    def test_matrix_shaped_observations_accepted(self, rng):
        truth = _real_psd(rng, 8, 1)
        mask = EntryMask.random((8, 8), 0.8, rng)
        result = fista_nuclear(mask, truth, mu=0.001, max_iterations=200)
        assert result.solution.shape == (8, 8)

    def test_large_mu_shrinks_to_zero(self, rng):
        truth = _real_psd(rng, 6, 2)
        mask = EntryMask.random((6, 6), 0.9, rng)
        result = fista_nuclear(mask, mask.observe(truth), mu=1e6, max_iterations=50)
        np.testing.assert_allclose(result.solution, 0.0, atol=1e-6)

    def test_objective_decreases_overall(self, rng):
        truth = _real_psd(rng, 10, 2)
        mask = EntryMask.random((10, 10), 0.6, rng)
        result = fista_nuclear(mask, mask.observe(truth), mu=0.01, max_iterations=100)
        assert result.history[-1] <= result.history[0] + 1e-9


class TestFistaWithQuadraticForms:
    def test_psd_constrained_recovery(self, rng):
        """Recover a low-rank covariance from many noiseless quadratic samples."""
        n, m = 8, 120
        truth = random_psd(n, 2, rng, scale=4.0)
        probes = rng.normal(size=(n, m)) + 1j * rng.normal(size=(n, m))
        probes /= np.linalg.norm(probes, axis=0)
        operator = QuadraticFormOperator(probes)
        observations = operator.apply(truth)
        result = fista_nuclear(
            operator, observations, mu=1e-4, hermitian_psd=True, max_iterations=2000,
            tolerance=1e-10,
        )
        assert relative_error(result.solution, truth) < 0.1

    def test_psd_output(self, rng):
        n, m = 6, 10
        probes = rng.normal(size=(n, m)) + 1j * rng.normal(size=(n, m))
        operator = QuadraticFormOperator(probes)
        observations = np.abs(rng.normal(size=m))
        result = fista_nuclear(operator, observations, mu=0.01, hermitian_psd=True)
        eigenvalues = np.linalg.eigvalsh(result.solution)
        assert np.min(eigenvalues) >= -1e-9

    def test_wrong_observation_shape(self, rng):
        operator = QuadraticFormOperator(np.ones((4, 3), dtype=complex))
        with pytest.raises(ValidationError):
            fista_nuclear(operator, np.ones(5), mu=0.1)

    def test_initial_must_match_shape(self, rng):
        operator = QuadraticFormOperator(np.ones((4, 3), dtype=complex))
        with pytest.raises(ValidationError):
            fista_nuclear(operator, np.ones(3), mu=0.1, initial=np.eye(5))

    def test_negative_mu(self, rng):
        operator = QuadraticFormOperator(np.ones((4, 3), dtype=complex))
        with pytest.raises(ValidationError):
            fista_nuclear(operator, np.ones(3), mu=-0.1)

    def test_warm_start_used(self, rng):
        """Warm-starting at the solution converges immediately."""
        n, m = 6, 60
        truth = random_psd(n, 1, rng)
        probes = rng.normal(size=(n, m)) + 1j * rng.normal(size=(n, m))
        probes /= np.linalg.norm(probes, axis=0)
        operator = QuadraticFormOperator(probes)
        observations = operator.apply(truth)
        result = fista_nuclear(
            operator, observations, mu=0.0, hermitian_psd=True, initial=truth,
            max_iterations=5,
        )
        assert relative_error(result.solution, truth) < 1e-6
