"""Tests for sampling masks and quadratic-form operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.mc.operators import EntryMask, QuadraticFormOperator
from repro.utils.linalg import random_psd


class TestEntryMask:
    def test_random_fraction(self, rng):
        mask = EntryMask.random((50, 40), 0.3, rng)
        assert 0.15 < mask.fraction_observed < 0.45

    def test_random_never_empty(self, rng):
        mask = EntryMask.random((5, 5), 1e-9, rng)
        assert mask.num_observed >= 1

    def test_symmetric_random(self, rng):
        mask = EntryMask.symmetric_random(20, 0.4, rng)
        np.testing.assert_array_equal(mask.mask, mask.mask.T)

    def test_project_zeroes_unobserved(self, rng):
        mask = EntryMask.random((6, 6), 0.5, rng)
        matrix = rng.normal(size=(6, 6))
        projected = mask.project(matrix)
        assert np.all(projected[~mask.mask] == 0)
        np.testing.assert_array_equal(projected[mask.mask], matrix[mask.mask])

    def test_observe_roundtrip(self, rng):
        mask = EntryMask.random((4, 7), 0.5, rng)
        matrix = rng.normal(size=(4, 7))
        observed = mask.observe(matrix)
        assert observed.shape == (mask.num_observed,)

    def test_shape_mismatch(self, rng):
        mask = EntryMask.random((4, 4), 0.5, rng)
        with pytest.raises(ValidationError):
            mask.project(np.zeros((5, 5)))

    def test_bool_required(self):
        with pytest.raises(ValidationError):
            EntryMask(mask=np.ones((3, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            EntryMask(mask=np.zeros((3, 3), dtype=bool))

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValidationError):
            EntryMask.random((3, 3), 0.0, rng)


class TestQuadraticFormOperator:
    def test_apply_matches_loop(self, rng):
        probes = rng.normal(size=(6, 4)) + 1j * rng.normal(size=(6, 4))
        operator = QuadraticFormOperator(probes)
        q = random_psd(6, 3, rng)
        expected = [
            np.real(probes[:, j].conj() @ q @ probes[:, j]) for j in range(4)
        ]
        np.testing.assert_allclose(operator.apply(q), expected, atol=1e-10)

    def test_adjoint_matches_loop(self, rng):
        probes = rng.normal(size=(5, 3)) + 1j * rng.normal(size=(5, 3))
        operator = QuadraticFormOperator(probes)
        weights = rng.normal(size=3)
        expected = sum(
            w * np.outer(probes[:, j], probes[:, j].conj())
            for j, w in enumerate(weights)
        )
        np.testing.assert_allclose(operator.adjoint(weights), expected, atol=1e-10)

    def test_adjoint_is_true_adjoint(self, rng):
        """<A(Q), y> == <Q, A*(y)> under the real inner products."""
        probes = rng.normal(size=(5, 4)) + 1j * rng.normal(size=(5, 4))
        operator = QuadraticFormOperator(probes)
        q = random_psd(5, 3, rng)
        y = rng.normal(size=4)
        lhs = float(operator.apply(q) @ y)
        rhs = float(np.real(np.vdot(operator.adjoint(y), q)))
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_lipschitz_bound(self, rng):
        probes = rng.normal(size=(4, 6)) + 1j * rng.normal(size=(4, 6))
        operator = QuadraticFormOperator(probes)
        bound = operator.lipschitz_bound()
        norms4 = np.sum(np.linalg.norm(probes, axis=0) ** 4)
        assert bound == pytest.approx(norms4)

    def test_dimensions(self, rng):
        operator = QuadraticFormOperator(np.ones((7, 2), dtype=complex))
        assert operator.dimension == 7
        assert operator.num_measurements == 2

    def test_shape_validation(self, rng):
        operator = QuadraticFormOperator(np.ones((4, 2), dtype=complex))
        with pytest.raises(ValidationError):
            operator.apply(np.eye(5))
        with pytest.raises(ValidationError):
            operator.adjoint(np.ones(3))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 8), m=st.integers(1, 6))
def test_property_quadratic_operator_psd_nonneg(seed, n, m):
    """A(Q) >= 0 entrywise for PSD Q."""
    rng = np.random.default_rng(seed)
    probes = rng.normal(size=(n, m)) + 1j * rng.normal(size=(n, m))
    operator = QuadraticFormOperator(probes)
    q = random_psd(n, max(1, n // 2), rng)
    assert np.all(operator.apply(q) >= -1e-9)
