"""Tests for the sweep machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.sim.runner import standard_schemes
from repro.sim.sweep import (
    EffectivenessSweep,
    effectiveness_sweep,
    required_search_rates,
)


@pytest.fixture(scope="module")
def sweep(request):
    from repro.sim.config import ChannelKind, ScenarioConfig
    from repro.sim.scenario import Scenario

    scenario = Scenario(
        ScenarioConfig(
            channel=ChannelKind.MULTIPATH,
            tx_shape=(2, 2),
            rx_shape=(2, 4),
            rx_beam_grid=(3, 3),
            fading_blocks=4,
        )
    )
    return effectiveness_sweep(
        scenario, standard_schemes(measurements_per_slot=4), [0.2, 0.5, 0.9], 4,
        base_seed=3,
    )


class TestEffectivenessSweep:
    def test_structure(self, sweep):
        assert sweep.search_rates == [0.2, 0.5, 0.9]
        assert set(sweep.schemes()) == {"Random", "Scan", "Proposed"}
        for scheme in sweep.schemes():
            assert len(sweep.losses[scheme]) == 3
            assert all(len(trials) == 4 for trials in sweep.losses[scheme])

    def test_stats_populated(self, sweep):
        for scheme in sweep.schemes():
            means = sweep.mean_loss(scheme)
            assert len(means) == 3
            assert all(m >= 0 for m in means)

    def test_loss_broadly_decreasing(self, sweep):
        """More budget can't hurt much: the 90% point beats the 20% point."""
        for scheme in sweep.schemes():
            means = sweep.mean_loss(scheme)
            assert means[-1] <= means[0] + 1.0

    def test_invalid_rates(self, small_scenario):
        with pytest.raises(ConfigurationError):
            effectiveness_sweep(small_scenario, standard_schemes(), [], 2)
        with pytest.raises(ConfigurationError):
            effectiveness_sweep(small_scenario, standard_schemes(), [1.5], 2)


class TestStoreAdapter:
    RATES = [0.2, 0.4]

    def _specs(self):
        from repro.sim.parallel import SchemeSpec

        return {
            "Random": SchemeSpec.of("Random"),
            "Proposed": SchemeSpec.of("Proposed", measurements_per_slot=4),
        }

    def test_store_path_matches_direct(self, small_scenario, tmp_path):
        specs = self._specs()
        direct = effectiveness_sweep(
            small_scenario,
            {name: spec.build_factory() for name, spec in specs.items()},
            self.RATES,
            3,
            base_seed=2,
        )
        stored = effectiveness_sweep(
            small_scenario,
            specs,
            self.RATES,
            3,
            base_seed=2,
            store=tmp_path / "store",
            shard_trials=2,
        )
        assert stored.losses == direct.losses
        assert stored.search_rates == direct.search_rates
        # second run resumes from the store; still identical
        resumed = effectiveness_sweep(
            small_scenario,
            specs,
            self.RATES,
            3,
            base_seed=2,
            store=tmp_path / "store",
            shard_trials=2,
        )
        assert resumed.losses == direct.losses

    def test_store_requires_scheme_specs(self, small_scenario, tmp_path):
        with pytest.raises(ConfigurationError, match="SchemeSpec"):
            effectiveness_sweep(
                small_scenario,
                standard_schemes(),
                self.RATES,
                2,
                store=tmp_path / "store",
            )


class TestRequiredSearchRates:
    def test_monotone_in_target(self, sweep):
        """Laxer targets can only need fewer measurements."""
        curve = required_search_rates(sweep, [0.5, 1.0, 2.0, 4.0, 8.0])
        for scheme in curve.schemes():
            rates = curve.required_rates[scheme]
            assert all(b <= a + 1e-12 for a, b in zip(rates, rates[1:]))

    def test_impossible_target_reports_full_rate(self):
        synthetic = EffectivenessSweep(
            search_rates=[0.1, 0.5],
            losses={"X": [[5.0, 5.0], [3.0, 3.0]]},
        )
        curve = required_search_rates(synthetic, [1.0])
        assert curve.required_rates["X"] == [1.0]

    def test_picks_smallest_sufficient_rate(self):
        synthetic = EffectivenessSweep(
            search_rates=[0.1, 0.3, 0.6],
            losses={"X": [[4.0], [2.0], [1.0]]},
        )
        curve = required_search_rates(synthetic, [2.5, 1.5, 0.5])
        assert curve.required_rates["X"] == [0.3, 0.6, 1.0]

    def test_unsorted_rate_grid_handled(self):
        synthetic = EffectivenessSweep(
            search_rates=[0.6, 0.1, 0.3],
            losses={"X": [[1.0], [4.0], [2.0]]},
        )
        curve = required_search_rates(synthetic, [2.5])
        assert curve.required_rates["X"] == [0.3]

    def test_invalid_targets(self, sweep):
        with pytest.raises(ValidationError):
            required_search_rates(sweep, [])
        with pytest.raises(ValidationError):
            required_search_rates(sweep, [-1.0])
