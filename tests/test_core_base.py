"""Tests for the alignment context and algorithm interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import AlignmentContext
from repro.exceptions import BudgetExhaustedError, ValidationError
from repro.measurement.budget import MeasurementBudget
from repro.measurement.measurer import MeasurementEngine
from repro.types import BeamPair


@pytest.fixture
def context(small_channel, tx_codebook, rx_codebook, rng):
    engine = MeasurementEngine(small_channel, rng, fading_blocks=2)
    budget = MeasurementBudget(
        total_pairs=tx_codebook.num_beams * rx_codebook.num_beams, limit=20
    )
    return AlignmentContext(tx_codebook, rx_codebook, engine, budget)


class TestContextBasics:
    def test_total_pairs(self, context):
        assert context.total_pairs == 4 * 18

    def test_noise_variance(self, context):
        assert context.noise_variance == pytest.approx(0.01)

    def test_budget_mismatch_rejected(self, small_channel, tx_codebook, rx_codebook, rng):
        engine = MeasurementEngine(small_channel, rng)
        bad_budget = MeasurementBudget(total_pairs=10, limit=5)
        with pytest.raises(ValidationError):
            AlignmentContext(tx_codebook, rx_codebook, engine, bad_budget)


class TestMeasurement:
    def test_measure_records(self, context):
        measurement = context.measure(BeamPair(0, 0))
        assert context.is_measured(BeamPair(0, 0))
        assert context.num_measurements == 1
        assert context.trace == [measurement]

    def test_repeat_measurement_rejected(self, context):
        context.measure(BeamPair(1, 2))
        with pytest.raises(ValidationError):
            context.measure(BeamPair(1, 2))

    def test_budget_enforced(self, context):
        for i in range(20):
            context.measure(BeamPair(i % 4, i // 4 + (i % 4) * 4))
        with pytest.raises(BudgetExhaustedError):
            context.measure(BeamPair(3, 17))

    def test_measured_rx_beams(self, context):
        context.measure(BeamPair(2, 5))
        context.measure(BeamPair(2, 9))
        context.measure(BeamPair(1, 5))
        assert context.measured_rx_beams(2) == {5, 9}
        assert context.measured_rx_beams(0) == set()

    def test_measure_vectors_charges_budget(self, context, tx_codebook, rx_codebook):
        context.measure_vectors(tx_codebook.beam(0), rx_codebook.beam(0))
        assert context.num_measurements == 1
        # Off-codebook probes have no pair identity -> no dedup entry.
        assert not context.is_measured(BeamPair(0, 0))


class TestOutcome:
    def test_best_measured(self, context):
        for pair in (BeamPair(0, 0), BeamPair(1, 3), BeamPair(3, 10)):
            context.measure(pair)
        best = context.best_measured()
        assert best.power == max(m.power for m in context.trace)

    def test_best_measured_empty(self, context):
        with pytest.raises(ValidationError):
            context.best_measured()

    def test_result_defaults_to_best(self, context):
        context.measure(BeamPair(0, 1))
        context.measure(BeamPair(2, 4))
        result = context.result("test")
        assert result.selected in (BeamPair(0, 1), BeamPair(2, 4))
        assert result.algorithm == "test"
        assert result.measurements_used == 2

    def test_result_with_explicit_selection(self, context):
        context.measure(BeamPair(0, 1))
        result = context.result("test", selected=BeamPair(0, 1))
        assert result.selected == BeamPair(0, 1)
        assert result.selected_power == context.trace[0].power

    def test_result_search_rate(self, context):
        context.measure(BeamPair(0, 0))
        result = context.result("test")
        assert result.search_rate == pytest.approx(1 / 72)
