"""Tests for the penalized-ML covariance estimator (Eq. 23)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation.likelihood import expected_powers
from repro.estimation.ml_covariance import MlCovarianceEstimator, estimate_ml_covariance
from repro.mc.operators import QuadraticFormOperator
from repro.utils.linalg import dominant_eigenvector, random_psd, unit_norm


def _measurement_setup(rng, n=8, m=64, rank=1, noise=0.01):
    probes = rng.normal(size=(n, m)) + 1j * rng.normal(size=(n, m))
    probes /= np.linalg.norm(probes, axis=0)
    operator = QuadraticFormOperator(probes)
    truth = random_psd(n, rank, rng, scale=float(n))
    lambdas = expected_powers(truth, operator, noise)
    powers = lambdas * rng.exponential(size=m)
    return probes, truth, powers


class TestSolver:
    def test_psd_output(self, rng):
        probes, _, powers = _measurement_setup(rng)
        result = estimate_ml_covariance(probes, powers, 0.01)
        values = np.linalg.eigvalsh(result.solution)
        assert np.min(values) >= -1e-9

    def test_hermitian_output(self, rng):
        probes, _, powers = _measurement_setup(rng)
        q = estimate_ml_covariance(probes, powers, 0.01).solution
        np.testing.assert_allclose(q, q.conj().T, atol=1e-10)

    def test_objective_monotone(self, rng):
        probes, _, powers = _measurement_setup(rng)
        result = estimate_ml_covariance(probes, powers, 0.01, max_iterations=30)
        history = result.history
        assert all(b <= a + 1e-8 for a, b in zip(history, history[1:]))

    def test_dominant_direction_recovered(self, rng):
        """With many exact-model measurements, the top eigenvector of the
        estimate aligns with the true one — the only thing Algorithm 1
        needs from the estimator."""
        probes, truth, powers = _measurement_setup(rng, n=8, m=256, rank=1)
        result = estimate_ml_covariance(probes, powers, 0.01, mu=0.01, max_iterations=100)
        true_vec = dominant_eigenvector(truth)
        est_vec = dominant_eigenvector(result.solution)
        assert abs(np.vdot(true_vec, est_vec)) > 0.9

    def test_subspace_matches_full(self, rng):
        """The subspace reduction must not change the solution."""
        probes, _, powers = _measurement_setup(rng, n=10, m=5)
        fast = estimate_ml_covariance(
            probes, powers, 0.01, subspace=True, max_iterations=60
        )
        slow = estimate_ml_covariance(
            probes, powers, 0.01, subspace=False, max_iterations=60
        )
        assert np.linalg.norm(fast.solution - slow.solution) <= 0.05 * max(
            1.0, np.linalg.norm(slow.solution)
        )

    def test_large_mu_shrinks(self, rng):
        probes, _, powers = _measurement_setup(rng)
        small = estimate_ml_covariance(probes, powers, 0.01, mu=0.001)
        large = estimate_ml_covariance(probes, powers, 0.01, mu=100.0)
        assert np.real(np.trace(large.solution)) < np.real(np.trace(small.solution))

    def test_warm_start_initial(self, rng):
        probes, truth, powers = _measurement_setup(rng)
        result = estimate_ml_covariance(probes, powers, 0.01, initial=truth)
        assert result.solution.shape == truth.shape

    def test_noise_only_estimate_small(self, rng):
        """Pure-noise measurements yield a near-zero estimate (the input
        to the detection-floor logic of the proposed scheme)."""
        n, m, noise = 8, 7, 0.01
        probes = rng.normal(size=(n, m)) + 1j * rng.normal(size=(n, m))
        probes /= np.linalg.norm(probes, axis=0)
        powers = noise * rng.exponential(size=m)
        result = estimate_ml_covariance(probes, powers, noise)
        assert float(np.real(np.trace(result.solution))) < 5 * noise


class TestEstimatorObject:
    def test_estimate_and_warm_start(self, rng):
        probes, _, powers = _measurement_setup(rng, m=12)
        estimator = MlCovarianceEstimator()
        first = estimator.estimate(probes[:, :6], powers[:6], 0.01)
        assert estimator.warm_start is not None
        second = estimator.estimate(probes[:, 6:], powers[6:], 0.01)
        assert second.shape == first.shape

    def test_reset(self, rng):
        probes, _, powers = _measurement_setup(rng, m=6)
        estimator = MlCovarianceEstimator()
        estimator.estimate(probes, powers, 0.01)
        estimator.reset()
        assert estimator.warm_start is None

    def test_input_validation(self):
        estimator = MlCovarianceEstimator()
        with pytest.raises(Exception):
            estimator.estimate(np.ones((4, 3)), np.ones(2), 0.01)
