"""Unit tests of the benchmark-regression gate (benchmarks/check_regression.py).

The gate is stdlib-only and file-driven, so these tests exercise it
end-to-end against synthetic ``BENCH_*.json`` directories: pass/fail
thresholds, calibration normalization, the tiny-stat floor, baseline
refresh, and the ``--inject-slowdown`` self-test hook.
"""

from __future__ import annotations

import json

import pytest

from benchmarks import check_regression as gate


def _write_bench(directory, label, mean_s, p50_s=None, p95_s=None, count=10):
    payload = {
        "name": label,
        "count": count,
        "mean_s": mean_s,
        "p50_s": p50_s if p50_s is not None else mean_s,
        "p95_s": p95_s if p95_s is not None else mean_s,
    }
    path = directory / f"BENCH_{label}.json"
    path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
    return path


@pytest.fixture()
def bench_dir(tmp_path):
    directory = tmp_path / "bench"
    directory.mkdir()
    return directory


@pytest.fixture()
def baseline_path(tmp_path):
    return tmp_path / "baseline.json"


def _make_baseline(path, entries):
    gate.write_baseline(path, entries)
    return path


class TestLoadSession:
    def test_reads_all_labels(self, bench_dir):
        _write_bench(bench_dir, "alpha", 1e-3)
        _write_bench(bench_dir, "beta", 2e-3)
        session = gate.load_session(bench_dir)
        assert set(session) == {"alpha", "beta"}
        assert session["alpha"]["mean_s"] == pytest.approx(1e-3)

    def test_label_falls_back_to_filename(self, bench_dir):
        payload = {"mean_s": 1e-3, "p50_s": 1e-3, "p95_s": 1e-3}
        (bench_dir / "BENCH_gamma.json").write_text(json.dumps(payload))
        assert "gamma" in gate.load_session(bench_dir)

    def test_empty_directory(self, bench_dir):
        assert gate.load_session(bench_dir) == {}


class TestCompare:
    def test_identical_timings_pass(self, bench_dir):
        _write_bench(bench_dir, "alpha", 1e-3)
        session = gate.load_session(bench_dir)
        assert gate.compare(session, session, threshold=0.25) == []

    def test_slowdown_beyond_threshold_fails(self, bench_dir):
        _write_bench(bench_dir, "alpha", 1e-3)
        baseline = gate.load_session(bench_dir)
        session = {"alpha": {"mean_s": 1.5e-3, "p50_s": 1.5e-3, "p95_s": 1.5e-3}}
        failures = gate.compare(baseline, session, threshold=0.25)
        assert len(failures) == 2  # mean_s and p50_s both gated
        assert "alpha" in failures[0]

    def test_slowdown_within_threshold_passes(self, bench_dir):
        _write_bench(bench_dir, "alpha", 1e-3)
        baseline = gate.load_session(bench_dir)
        session = {"alpha": {"mean_s": 1.2e-3, "p50_s": 1.2e-3, "p95_s": 1.2e-3}}
        assert gate.compare(baseline, session, threshold=0.25) == []

    def test_speedup_passes(self, bench_dir):
        _write_bench(bench_dir, "alpha", 1e-3)
        baseline = gate.load_session(bench_dir)
        session = {"alpha": {"mean_s": 5e-4, "p50_s": 5e-4, "p95_s": 5e-4}}
        assert gate.compare(baseline, session, threshold=0.25) == []

    def test_missing_session_label_is_skipped(self, bench_dir):
        _write_bench(bench_dir, "alpha", 1e-3)
        baseline = gate.load_session(bench_dir)
        assert gate.compare(baseline, {}, threshold=0.25) == []

    def test_new_session_label_never_fails(self, bench_dir):
        _write_bench(bench_dir, "brand-new", 1e-3)
        session = gate.load_session(bench_dir)
        assert gate.compare({}, session, threshold=0.25) == []

    def test_new_labels_are_named(self, bench_dir, capsys):
        _write_bench(bench_dir, "brand-new", 1e-3)
        _write_bench(bench_dir, "also-new", 1e-3)
        session = gate.load_session(bench_dir)
        assert gate.new_labels({}, session) == ["also-new", "brand-new"]
        gate.compare({}, session, threshold=0.25)
        output = capsys.readouterr().out
        assert "NEW (2 unbaselined): also-new, brand-new" in output

    def test_new_labels_exclude_calibration(self):
        session = {gate.CALIBRATION_LABEL: {"mean_s": 1e-3}, "alpha": {"mean_s": 1e-3}}
        assert gate.new_labels({}, session) == ["alpha"]

    def test_tiny_baseline_not_gated(self):
        floor = gate.MIN_GATED_SECONDS
        baseline = {"tiny": {"mean_s": floor / 2, "p50_s": floor / 2}}
        session = {"tiny": {"mean_s": floor * 50, "p50_s": floor * 50}}
        assert gate.compare(baseline, session, threshold=0.25) == []

    def test_p95_tail_is_not_gated(self):
        """Tail latency is reported but never fails the gate."""
        baseline = {"alpha": {"mean_s": 1e-3, "p50_s": 1e-3, "p95_s": 1e-3}}
        session = {"alpha": {"mean_s": 1e-3, "p50_s": 1e-3, "p95_s": 5e-3}}
        assert gate.compare(baseline, session, threshold=0.25) == []

    def test_calibration_normalizes_machine_speed(self):
        """A 2x-slower machine shows 2x timings but an unchanged ratio."""
        baseline = {
            gate.CALIBRATION_LABEL: {"mean_s": 1e-3, "p50_s": 1e-3},
            "alpha": {"mean_s": 1e-3, "p50_s": 1e-3},
        }
        session = {
            gate.CALIBRATION_LABEL: {"mean_s": 2e-3, "p50_s": 2e-3},
            "alpha": {"mean_s": 2e-3, "p50_s": 2e-3},
        }
        assert gate.compare(baseline, session, threshold=0.25) == []

    def test_calibration_does_not_mask_real_regression(self):
        """Same machine speed, genuinely slower code: still fails."""
        baseline = {
            gate.CALIBRATION_LABEL: {"mean_s": 1e-3, "p50_s": 1e-3},
            "alpha": {"mean_s": 1e-3, "p50_s": 1e-3},
        }
        session = {
            gate.CALIBRATION_LABEL: {"mean_s": 1e-3, "p50_s": 1e-3},
            "alpha": {"mean_s": 2e-3, "p50_s": 2e-3},
        }
        assert len(gate.compare(baseline, session, threshold=0.25)) == 2

    def test_missing_calibration_falls_back_to_raw(self):
        baseline = {"alpha": {"mean_s": 1e-3, "p50_s": 1e-3}}
        session = {"alpha": {"mean_s": 2e-3, "p50_s": 2e-3}}
        assert len(gate.compare(baseline, session, threshold=0.25)) == 2


class TestMain:
    def test_gate_passes_against_own_baseline(self, bench_dir, baseline_path):
        _write_bench(bench_dir, "alpha", 1e-3)
        _make_baseline(baseline_path, gate.load_session(bench_dir))
        code = gate.main(
            ["--bench-dir", str(bench_dir), "--baseline", str(baseline_path)]
        )
        assert code == 0

    def test_gate_fails_on_regression(self, bench_dir, baseline_path):
        _write_bench(bench_dir, "alpha", 1e-3)
        _make_baseline(baseline_path, {"alpha": {"mean_s": 5e-4, "p95_s": 5e-4}})
        code = gate.main(
            ["--bench-dir", str(bench_dir), "--baseline", str(baseline_path)]
        )
        assert code == 1

    def test_inject_slowdown_fails_clean_session(self, bench_dir, baseline_path):
        """The CI self-test path: a 2x injection must trip the gate."""
        _write_bench(bench_dir, "alpha", 1e-3)
        _make_baseline(baseline_path, gate.load_session(bench_dir))
        code = gate.main(
            [
                "--bench-dir",
                str(bench_dir),
                "--baseline",
                str(baseline_path),
                "--inject-slowdown",
                "2",
            ]
        )
        assert code == 1

    def test_inject_slowdown_spares_calibration(self, bench_dir, baseline_path):
        """Injection simulates slow *code*; the machine-speed probe stays."""
        _write_bench(bench_dir, gate.CALIBRATION_LABEL, 1e-3)
        _write_bench(bench_dir, "alpha", 1e-3)
        _make_baseline(baseline_path, gate.load_session(bench_dir))
        code = gate.main(
            [
                "--bench-dir",
                str(bench_dir),
                "--baseline",
                str(baseline_path),
                "--inject-slowdown",
                "3",
            ]
        )
        assert code == 1

    def test_update_writes_baseline(self, bench_dir, baseline_path):
        _write_bench(bench_dir, "alpha", 1e-3)
        code = gate.main(
            [
                "--bench-dir",
                str(bench_dir),
                "--baseline",
                str(baseline_path),
                "--update",
            ]
        )
        assert code == 0
        payload = json.loads(baseline_path.read_text())
        assert payload["version"] == gate.BASELINE_VERSION
        assert "alpha" in payload["entries"]

    def test_update_then_gate_round_trip(self, bench_dir, baseline_path):
        _write_bench(bench_dir, "alpha", 1e-3)
        args = ["--bench-dir", str(bench_dir), "--baseline", str(baseline_path)]
        assert gate.main([*args, "--update"]) == 0
        assert gate.main(args) == 0

    def test_strict_new_fails_on_unbaselined_bench(self, bench_dir, baseline_path):
        _write_bench(bench_dir, "alpha", 1e-3)
        _write_bench(bench_dir, "brand-new", 1e-3)
        _make_baseline(baseline_path, {"alpha": {"mean_s": 1e-3, "p50_s": 1e-3}})
        args = ["--bench-dir", str(bench_dir), "--baseline", str(baseline_path)]
        assert gate.main(args) == 0  # default: informational only
        assert gate.main([*args, "--strict-new"]) == 1

    def test_strict_new_passes_when_all_baselined(self, bench_dir, baseline_path):
        _write_bench(bench_dir, "alpha", 1e-3)
        _make_baseline(baseline_path, gate.load_session(bench_dir))
        args = ["--bench-dir", str(bench_dir), "--baseline", str(baseline_path)]
        assert gate.main([*args, "--strict-new"]) == 0

    def test_missing_baseline_errors(self, bench_dir, baseline_path):
        _write_bench(bench_dir, "alpha", 1e-3)
        code = gate.main(
            ["--bench-dir", str(bench_dir), "--baseline", str(baseline_path)]
        )
        assert code == 1

    def test_empty_bench_dir_errors(self, bench_dir, baseline_path):
        code = gate.main(
            ["--bench-dir", str(bench_dir), "--baseline", str(baseline_path)]
        )
        assert code == 1

    def test_threshold_flag_widens_allowance(self, bench_dir, baseline_path):
        _write_bench(bench_dir, "alpha", 1.4e-3)
        _make_baseline(baseline_path, {"alpha": {"mean_s": 1e-3, "p95_s": 1e-3}})
        args = ["--bench-dir", str(bench_dir), "--baseline", str(baseline_path)]
        assert gate.main(args) == 1
        assert gate.main([*args, "--threshold", "0.5"]) == 0

    def test_committed_baseline_is_loadable(self):
        """The repo's own baseline parses and carries the calibration label."""
        entries = gate.load_baseline(gate.DEFAULT_BASELINE)
        assert gate.CALIBRATION_LABEL in entries
        assert all("mean_s" in stats for stats in entries.values())


class TestTrajectoryArtifact:
    """benchmarks/make_trajectory.py: BENCH_* label files -> BENCH_<tag>.json."""

    def _session(self, bench_dir):
        _write_bench(bench_dir, "alpha", 2e-3)
        _write_bench(bench_dir, "beta", 4e-3)
        _write_bench(bench_dir, "calibration", 1e-3)
        return bench_dir

    def test_builds_normalized_entries(self, bench_dir):
        from benchmarks import make_trajectory

        entries = make_trajectory.load_bench_files(self._session(bench_dir))
        payload = make_trajectory.build_trajectory("PR5", [entries])
        assert payload["kind"] == "bench-trajectory-v1"
        assert payload["tag"] == "PR5"
        assert set(payload["entries"]) == {"alpha", "beta"}  # calibration split out
        assert payload["entries"]["alpha"]["mean_normalized"] == pytest.approx(2.0)
        assert payload["entries"]["beta"]["mean_normalized"] == pytest.approx(4.0)
        assert payload["calibration"]["mean_s"] == pytest.approx(1e-3)

    def test_folds_per_backend_sessions(self, tmp_path):
        from benchmarks import make_trajectory

        sessions = []
        for backend, scale in (("numpy", 1e-3), ("numba", 2e-3)):
            directory = tmp_path / backend
            directory.mkdir()
            _write_bench(directory, "alpha", 4 * scale)
            _write_bench(directory, "calibration", scale)
            entries = make_trajectory.load_bench_files(directory)
            for stats in entries.values():
                stats["backend"] = backend
            sessions.append(entries)
        payload = make_trajectory.build_trajectory("PR7", sessions)
        # Shared labels are keyed label[backend]; each session normalizes
        # by its OWN calibration, so both tiers land on the same ratio.
        assert set(payload["entries"]) == {"alpha[numpy]", "alpha[numba]"}
        for key in payload["entries"]:
            assert payload["entries"][key]["mean_normalized"] == pytest.approx(4.0)
        assert payload["entries"]["alpha[numba]"]["backend"] == "numba"
        assert payload["calibration"]["mean_s"] == pytest.approx(1e-3)

    def test_fallback_session_keyed_by_requested_tier(self, tmp_path):
        from benchmarks import make_trajectory

        sessions = []
        for requested in ("numpy", "numba"):
            directory = tmp_path / requested
            directory.mkdir()
            _write_bench(directory, "alpha", 2e-3)
            entries = make_trajectory.load_bench_files(directory)
            for stats in entries.values():
                stats["backend"] = "numpy"  # numba leg fell back
                if requested != "numpy":
                    stats["backend_requested"] = requested
            sessions.append(entries)
        payload = make_trajectory.build_trajectory("PR7", sessions)
        assert set(payload["entries"]) == {"alpha[numpy]", "alpha[numba]"}
        entry = payload["entries"]["alpha[numba]"]
        assert entry["backend"] == "numpy"
        assert entry["backend_requested"] == "numba"

    def test_main_writes_artifact_and_skips_itself(self, bench_dir):
        from benchmarks import make_trajectory

        self._session(bench_dir)
        out = bench_dir / "BENCH_PR9.json"
        argv = ["--tag", "PR9", "--bench-dir", str(bench_dir), "--out", str(out)]
        assert make_trajectory.main(argv) == 0
        first = json.loads(out.read_text(encoding="utf-8"))
        # Re-running must not fold the previous artifact into itself.
        assert make_trajectory.main(argv) == 0
        assert json.loads(out.read_text(encoding="utf-8")) == first

    def test_missing_bench_dir_fails(self, tmp_path):
        from benchmarks import make_trajectory

        empty = tmp_path / "empty"
        empty.mkdir()
        assert make_trajectory.main(["--tag", "X", "--bench-dir", str(empty)]) == 1

    def test_committed_trajectory_is_current_format(self):
        from benchmarks import make_trajectory

        committed = make_trajectory.REPO_ROOT / "BENCH_PR5.json"
        payload = json.loads(committed.read_text(encoding="utf-8"))
        assert payload["kind"] == "bench-trajectory-v1"
        assert payload["version"] == make_trajectory.TRAJECTORY_VERSION
        assert payload["entries"]
