"""Tests for the experiment registry and rendering."""

from __future__ import annotations

import pytest

import repro.experiments as experiments
from repro.exceptions import ExperimentError
from repro.experiments.registry import Experiment, ExperimentResult, get, list_ids, register
from repro.experiments.render import render_table
from repro.sim.sweep import CostEfficiencyCurve, EffectivenessSweep


class TestRegistry:
    def test_all_paper_figures_registered(self):
        ids = list_ids()
        for required in ("fig5", "fig6", "fig7", "fig8"):
            assert required in ids

    def test_ablations_registered(self):
        ids = list_ids()
        for required in (
            "lowrank",
            "abl-estimator",
            "abl-j",
            "abl-mu",
            "abl-floor",
            "mac-overhead",
            "cell-search",
            "mc-recovery",
        ):
            assert required in ids

    def test_get_known(self):
        experiment = get("fig5")
        assert experiment.paper_artifact == "Figure 5"

    def test_get_unknown(self):
        with pytest.raises(ExperimentError):
            get("fig99")

    def test_duplicate_rejected(self):
        experiment = get("fig5")
        with pytest.raises(ExperimentError):
            register(experiment)

    def test_result_str_is_table(self):
        result = ExperimentResult("x", "t", {}, table="hello")
        assert str(result) == "hello"


class TestRenderTable:
    def test_alignment(self):
        table = render_table(["a", "bbb"], [["1", "2"], ["33", "4"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        # All body lines share the header's total width (fixed columns).
        assert len({len(line) for line in lines[1:]}) == 1

    def test_missing_cells_padded(self):
        table = render_table(["a", "b"], [["1"]])
        assert table.splitlines()[-1].strip() == "1"


class TestRenderSweeps:
    def test_effectiveness_render(self):
        sweep = EffectivenessSweep(
            search_rates=[0.1, 0.2],
            losses={"Random": [[1.0, 2.0], [0.5, 0.7]], "Proposed": [[0.5], [0.2]]},
        )
        text = experiments.render_effectiveness(sweep, "demo")
        assert "demo" in text
        assert "Random loss(dB)" in text
        assert "10.0%" in text

    def test_cost_render(self):
        curve = CostEfficiencyCurve(
            target_losses_db=[1.0, 3.0],
            required_rates={"Random": [0.5, 0.2], "Proposed": [0.3, 0.1]},
        )
        text = experiments.render_cost_efficiency(curve, "costs")
        assert "costs" in text
        assert "Proposed req.rate" in text
        assert "30.0%" in text
