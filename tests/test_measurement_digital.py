"""Tests for digital (full-vector) observations and the DigitalRx scheme."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.digital_rx import DigitalRxSearch
from repro.core.base import AlignmentContext
from repro.exceptions import ValidationError
from repro.measurement.budget import MeasurementBudget
from repro.measurement.digital import (
    beam_powers_from_observations,
    observe_rx_vector,
    vector_sample_covariance,
)
from repro.measurement.measurer import MeasurementEngine
from repro.sim.metrics import loss_from_matrix_db


@pytest.fixture
def tx_beam(tx_codebook):
    return tx_codebook.beam(0)


class TestObserveRxVector:
    def test_shape(self, small_channel, tx_beam, rng):
        observations = observe_rx_vector(small_channel, tx_beam, rng, fading_blocks=5)
        assert observations.shape == (5, 8)

    def test_statistics_match_covariance(self, small_channel, tx_beam, rng):
        """E[y y^H] == Q_u + I / gamma."""
        observations = observe_rx_vector(
            small_channel, tx_beam, rng, fading_blocks=20000
        )
        empirical = observations.T @ observations.conj() / observations.shape[0]
        expected = small_channel.rx_covariance(tx_beam) + 0.01 * np.eye(8)
        assert np.linalg.norm(empirical - expected) / np.linalg.norm(expected) < 0.1

    def test_validation(self, small_channel, tx_beam, rng):
        with pytest.raises(ValidationError):
            observe_rx_vector(small_channel, tx_beam, rng, fading_blocks=0)
        with pytest.raises(ValidationError):
            observe_rx_vector(small_channel, np.ones(4, dtype=complex), rng)


class TestBeamPowers:
    def test_matches_manual_projection(self, small_channel, tx_beam, rx_codebook, rng):
        observations = observe_rx_vector(small_channel, tx_beam, rng, fading_blocks=4)
        powers = beam_powers_from_observations(observations, rx_codebook.vectors)
        manual = np.mean(
            np.abs(observations.conj() @ rx_codebook.vectors) ** 2, axis=0
        )
        np.testing.assert_allclose(powers, manual)

    def test_agrees_with_analog_engine_in_expectation(
        self, small_channel, tx_codebook, rx_codebook
    ):
        """Software beamforming on digital observations has the same mean
        as analog dwells on the same pair."""
        rng = np.random.default_rng(0)
        tx_beam = tx_codebook.beam(1)
        observations = observe_rx_vector(small_channel, tx_beam, rng, fading_blocks=8000)
        digital = beam_powers_from_observations(
            observations, rx_codebook.vectors[:, [4]]
        )[0]
        engine = MeasurementEngine(small_channel, np.random.default_rng(1))
        analog_mean = engine.expected_power(tx_beam, rx_codebook.beam(4))
        assert digital == pytest.approx(analog_mean, rel=0.08)

    def test_shape_validation(self, rng):
        with pytest.raises(ValidationError):
            beam_powers_from_observations(np.ones((3, 4)), np.ones((5, 2)))


class TestVectorSampleCovariance:
    def test_psd_output(self, small_channel, tx_beam, rng):
        observations = observe_rx_vector(small_channel, tx_beam, rng, fading_blocks=30)
        q = vector_sample_covariance(observations, 0.01)
        assert np.min(np.linalg.eigvalsh(q)) >= -1e-10

    def test_converges_to_truth(self, small_channel, tx_beam, rng):
        observations = observe_rx_vector(
            small_channel, tx_beam, rng, fading_blocks=20000
        )
        q = vector_sample_covariance(observations, 0.01)
        truth = small_channel.rx_covariance(tx_beam)
        assert np.linalg.norm(q - truth) / np.linalg.norm(truth) < 0.15

    def test_validation(self):
        with pytest.raises(ValidationError):
            vector_sample_covariance(np.ones(4), 0.01)
        with pytest.raises(ValidationError):
            vector_sample_covariance(np.ones((3, 4)), 0.0)


class TestDigitalRxSearch:
    def _context(self, small_channel, tx_codebook, rx_codebook, rng, limit):
        engine = MeasurementEngine(small_channel, rng, fading_blocks=4)
        budget = MeasurementBudget(
            total_pairs=tx_codebook.num_beams * rx_codebook.num_beams, limit=limit
        )
        return AlignmentContext(tx_codebook, rx_codebook, engine, budget)

    def test_budget_respected(self, small_channel, tx_codebook, rx_codebook, rng):
        context = self._context(small_channel, tx_codebook, rx_codebook, rng, 5)
        result = DigitalRxSearch().align(context, rng)
        assert result.measurements_used <= 5

    def test_strong_quality_with_one_dwell_per_tx(
        self, small_channel, tx_codebook, rx_codebook, rng
    ):
        """|U| + 1 budget units suffice to get near the optimum."""
        limit = tx_codebook.num_beams + 1
        context = self._context(small_channel, tx_codebook, rx_codebook, rng, limit)
        result = DigitalRxSearch(fading_blocks=64).align(context, rng)
        snr = small_channel.mean_snr_matrix(tx_codebook, rx_codebook)
        assert loss_from_matrix_db(snr, result.selected) < 2.0

    def test_tiny_budget(self, small_channel, tx_codebook, rx_codebook, rng):
        context = self._context(small_channel, tx_codebook, rx_codebook, rng, 1)
        result = DigitalRxSearch().align(context, rng)
        assert result.measurements_used == 1
        assert result.selected is not None
