"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.mac.events import EventScheduler


class TestScheduling:
    def test_time_advances(self):
        scheduler = EventScheduler()
        times = []
        scheduler.schedule_after(2.0, lambda: times.append(scheduler.now))
        scheduler.schedule_after(1.0, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == [1.0, 2.0]

    def test_fifo_among_simultaneous(self):
        scheduler = EventScheduler()
        order = []
        for tag in range(5):
            scheduler.schedule_at(1.0, lambda tag=tag: order.append(tag))
        scheduler.run()
        assert order == [0, 1, 2, 3, 4]

    def test_no_past_scheduling(self):
        scheduler = EventScheduler(start_time=10.0)
        with pytest.raises(SimulationError):
            scheduler.schedule_at(5.0, lambda: None)

    def test_negative_delay(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule_after(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        scheduler = EventScheduler()
        fired = []

        def chain(depth: int) -> None:
            fired.append(scheduler.now)
            if depth > 0:
                scheduler.schedule_after(1.0, lambda: chain(depth - 1))

        scheduler.schedule_after(0.0, lambda: chain(3))
        scheduler.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancel_prevents_execution(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule_after(1.0, lambda: fired.append(1))
        scheduler.cancel(handle)
        scheduler.run()
        assert fired == []

    def test_cancel_after_run_is_noop(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule_after(1.0, lambda: fired.append(1))
        scheduler.run()
        scheduler.cancel(handle)
        assert fired == [1]


class TestRunModes:
    def test_step(self):
        scheduler = EventScheduler()
        scheduler.schedule_after(1.0, lambda: None)
        assert scheduler.step()
        assert not scheduler.step()

    def test_run_max_events(self):
        scheduler = EventScheduler()
        for _ in range(5):
            scheduler.schedule_after(1.0, lambda: None)
        assert scheduler.run(max_events=3) == 3
        assert scheduler.pending == 2

    def test_run_until(self):
        scheduler = EventScheduler()
        fired = []
        for t in (1.0, 2.0, 3.0):
            scheduler.schedule_at(t, lambda t=t: fired.append(t))
        executed = scheduler.run_until(2.0)
        assert executed == 2
        assert fired == [1.0, 2.0]
        assert scheduler.now == 2.0

    def test_run_until_advances_clock_without_events(self):
        scheduler = EventScheduler()
        scheduler.run_until(7.5)
        assert scheduler.now == 7.5

    def test_run_until_backwards_rejected(self):
        scheduler = EventScheduler(start_time=5.0)
        with pytest.raises(SimulationError):
            scheduler.run_until(4.0)

    def test_processed_counter(self):
        scheduler = EventScheduler()
        for _ in range(3):
            scheduler.schedule_after(0.5, lambda: None)
        scheduler.run()
        assert scheduler.processed == 3


@settings(max_examples=30, deadline=None)
@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
def test_property_events_execute_in_time_order(delays):
    scheduler = EventScheduler()
    executed = []
    for delay in delays:
        scheduler.schedule_after(delay, lambda d=delay: executed.append(scheduler.now))
    scheduler.run()
    assert executed == sorted(executed)
    assert len(executed) == len(delays)
