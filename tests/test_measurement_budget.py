"""Tests for measurement-budget accounting."""

from __future__ import annotations

import pytest

from repro.exceptions import BudgetExhaustedError, ValidationError
from repro.measurement.budget import MeasurementBudget, measurements_for_search_rate


class TestMeasurementsForSearchRate:
    def test_rounding(self):
        assert measurements_for_search_rate(1000, 0.1) == 100
        assert measurements_for_search_rate(1000, 0.1234) == 123

    def test_minimum_one(self):
        assert measurements_for_search_rate(1000, 0.0001) == 1

    def test_full_rate(self):
        assert measurements_for_search_rate(64, 1.0) == 64

    def test_invalid(self):
        with pytest.raises(ValidationError):
            measurements_for_search_rate(0, 0.1)
        with pytest.raises(ValidationError):
            measurements_for_search_rate(10, 0.0)
        with pytest.raises(ValidationError):
            measurements_for_search_rate(10, 1.5)


class TestMeasurementBudget:
    def test_charge_and_remaining(self):
        budget = MeasurementBudget(total_pairs=100, limit=10)
        budget.charge(4)
        assert budget.spent == 4
        assert budget.remaining == 6
        assert not budget.exhausted

    def test_exhaustion(self):
        budget = MeasurementBudget(total_pairs=100, limit=3)
        budget.charge(3)
        assert budget.exhausted
        with pytest.raises(BudgetExhaustedError):
            budget.charge(1)

    def test_overrun_refused_atomically(self):
        budget = MeasurementBudget(total_pairs=100, limit=5)
        budget.charge(4)
        with pytest.raises(BudgetExhaustedError):
            budget.charge(2)
        assert budget.spent == 4  # unchanged

    def test_search_rates(self):
        budget = MeasurementBudget(total_pairs=200, limit=50)
        assert budget.search_rate == pytest.approx(0.25)
        budget.charge(10)
        assert budget.spent_rate == pytest.approx(0.05)

    def test_from_search_rate(self):
        budget = MeasurementBudget.from_search_rate(1024, 0.1)
        assert budget.limit == 102
        assert budget.total_pairs == 1024

    def test_zero_charge(self):
        budget = MeasurementBudget(total_pairs=10, limit=5)
        budget.charge(0)
        assert budget.spent == 0

    def test_negative_charge(self):
        budget = MeasurementBudget(total_pairs=10, limit=5)
        with pytest.raises(ValidationError):
            budget.charge(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_pairs": 0, "limit": 1},
            {"total_pairs": 10, "limit": 0},
            {"total_pairs": 10, "limit": 11},
            {"total_pairs": 10, "limit": 5, "spent": 6},
            {"total_pairs": 10, "limit": 5, "spent": -1},
        ],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValidationError):
            MeasurementBudget(**kwargs)
