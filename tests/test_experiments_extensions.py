"""Quick-mode runs of the extension experiments."""

from __future__ import annotations

import numpy as np

import repro.experiments as experiments


class TestSchemeComparison:
    def test_quick_run(self):
        result = experiments.run("ext-schemes", quick=True)
        means = result.data["mean_loss_db"]
        expected = {
            "Random",
            "Scan",
            "Proposed",
            "Bidirectional",
            "Hierarchical",
            "LocalRefine",
            "UCB",
            "DigitalRx",
            "Genie",
        }
        assert set(means) == expected
        # The genie is exact by construction.
        assert means["Genie"] == 0.0
        # Hierarchical descent needs far fewer measurements than the budget.
        assert (
            result.data["mean_measurements"]["Hierarchical"]
            < result.data["mean_measurements"]["Random"]
        )


class TestTracking:
    def test_quick_run(self):
        result = experiments.run("ext-tracking", quick=True)
        drift_data = result.data["drift"]
        assert len(drift_data) == 1
        payload = next(iter(drift_data.values()))
        for key in ("cold_mean_db", "warm_mean_db"):
            assert np.isfinite(payload[key])
            assert payload[key] >= 0.0
