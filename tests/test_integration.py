"""Cross-module integration tests.

These run the full pipeline — scenario, channel, measurement, estimation,
alignment, evaluation — on small but non-trivial configurations and check
the paper's qualitative claims at test-sized statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.genie import GenieAligner
from repro.core.proposed import ProposedAlignment
from repro.sim.config import ChannelKind, ScenarioConfig
from repro.sim.runner import run_trial, run_trials, standard_schemes
from repro.sim.scenario import Scenario
from repro.sim.sweep import effectiveness_sweep, required_search_rates


@pytest.fixture(scope="module")
def medium_scenario() -> Scenario:
    """Large enough for structure, small enough for CI: 8 x 24 beams."""
    return Scenario(
        ScenarioConfig(
            channel=ChannelKind.MULTIPATH,
            tx_shape=(2, 4),
            rx_shape=(4, 4),
            rx_beam_grid=(4, 6),
            fading_blocks=8,
        )
    )


class TestEndToEnd:
    def test_full_rate_near_zero_loss(self, medium_scenario):
        """At 100% search rate every scheme approaches the optimum
        (the paper's stated exhaustive-scan anchor). With 8 fading blocks
        per dwell, residual selection noise costs at most a couple of dB."""
        trials = run_trials(medium_scenario, standard_schemes(4), 1.0, 5, base_seed=21)
        for trial in trials:
            for outcome in trial.values():
                assert outcome.loss_db < 3.0

    def test_full_rate_long_dwell_nails_optimum(self):
        """Long dwells remove selection noise entirely."""
        scenario = Scenario(
            ScenarioConfig(
                channel=ChannelKind.MULTIPATH,
                tx_shape=(2, 2),
                rx_shape=(2, 4),
                rx_beam_grid=(3, 4),
                fading_blocks=256,
            )
        )
        trials = run_trials(scenario, standard_schemes(4), 1.0, 3, base_seed=41)
        for trial in trials:
            for outcome in trial.values():
                assert outcome.loss_db < 0.5

    def test_losses_decrease_with_rate(self, medium_scenario):
        sweep = effectiveness_sweep(
            medium_scenario, standard_schemes(4), [0.1, 1.0], 6, base_seed=22
        )
        for scheme in sweep.schemes():
            means = sweep.mean_loss(scheme)
            assert means[-1] <= means[0] + 0.5

    def test_proposed_competitive_with_random(self, medium_scenario):
        """The headline claim at test scale: Proposed is at least on par
        with Random at a moderate budget (the benchmarks assert the
        strict win at full statistics)."""
        sweep = effectiveness_sweep(
            medium_scenario, standard_schemes(4), [0.25], 12, base_seed=23
        )
        proposed = sweep.mean_loss("Proposed")[0]
        random = sweep.mean_loss("Random")[0]
        assert proposed <= random + 1.0

    def test_genie_lower_bounds_everyone(self, medium_scenario):
        schemes = dict(standard_schemes(4))
        schemes["Genie"] = lambda channel: GenieAligner(channel)
        trials = run_trials(medium_scenario, schemes, 0.3, 5, base_seed=24)
        for trial in trials:
            genie_loss = trial["Genie"].loss_db
            assert genie_loss == pytest.approx(0.0, abs=1e-9)
            for name, outcome in trial.items():
                assert outcome.loss_db >= genie_loss - 1e-9

    def test_required_rates_consistent_with_sweep(self, medium_scenario):
        sweep = effectiveness_sweep(
            medium_scenario, standard_schemes(4), [0.2, 0.6, 1.0], 5, base_seed=25
        )
        curve = required_search_rates(sweep, [1.0, 3.0, 10.0])
        for scheme in curve.schemes():
            rates = curve.required_rates[scheme]
            assert all(0 < r <= 1 for r in rates)
            assert all(b <= a + 1e-12 for a, b in zip(rates, rates[1:]))

    def test_proposed_scales_with_j(self, medium_scenario):
        """Any J must run cleanly end to end."""
        rng = np.random.default_rng(0)
        for j in (1, 2, 5, 24):
            schemes = {"P": lambda ch, j=j: ProposedAlignment(measurements_per_slot=j)}
            outcome = run_trial(medium_scenario, schemes, 0.2, rng)["P"]
            assert outcome.result.measurements_used == round(0.2 * medium_scenario.total_pairs)


class TestSinglepathIntegration:
    def test_singlepath_has_rank_one_structure(self):
        scenario = Scenario(
            ScenarioConfig(
                channel=ChannelKind.SINGLEPATH,
                tx_shape=(2, 2),
                rx_shape=(2, 4),
                rx_beam_grid=(3, 6),
            )
        )
        rng = np.random.default_rng(1)
        channel = scenario.sample_channel(rng)
        values = np.linalg.eigvalsh(channel.full_rx_covariance())
        assert np.sum(values > 1e-9 * values.max()) == 1

    def test_alignment_on_singlepath(self):
        scenario = Scenario(
            ScenarioConfig(
                channel=ChannelKind.SINGLEPATH,
                tx_shape=(2, 2),
                rx_shape=(2, 4),
                rx_beam_grid=(3, 6),
                fading_blocks=8,
            )
        )
        trials = run_trials(scenario, standard_schemes(4), 0.5, 6, base_seed=31)
        proposed = np.mean([t["Proposed"].loss_db for t in trials])
        assert proposed < 10.0
