"""Tests for statistics aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.sim.aggregate import summarize


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.count == 4
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_single_value(self):
        stats = summarize([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.sem == 0.0

    def test_ci_halfwidth(self):
        stats = summarize([1.0, 3.0])
        assert stats.ci95_halfwidth == pytest.approx(1.96 * stats.sem)

    def test_infinities_clipped_to_finite_max(self):
        stats = summarize([1.0, 2.0, np.inf])
        assert stats.mean == pytest.approx((1.0 + 2.0 + 2.0) / 3)

    def test_all_infinite_rejected(self):
        with pytest.raises(ValidationError):
            summarize([np.inf, np.inf])

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            summarize([1.0, np.nan])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            summarize([])
