"""Tests for the process-parallel trial runner."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.parallel import (
    SCHEME_BUILDERS,
    ParallelOutcome,
    SchemeSpec,
    run_trials_parallel,
)
from repro.sim.runner import run_trials


class TestSchemeSpec:
    def test_of_known(self):
        spec = SchemeSpec.of("Proposed", measurements_per_slot=4)
        assert spec.name == "Proposed"
        assert dict(spec.params) == {"measurements_per_slot": 4}

    def test_of_unknown(self):
        with pytest.raises(ConfigurationError):
            SchemeSpec.of("NotAScheme")

    def test_factory_builds_scheme(self, small_channel):
        spec = SchemeSpec.of("Random")
        algorithm = spec.build_factory()(small_channel)
        assert algorithm.name == "Random"

    def test_genie_gets_channel(self, small_channel):
        spec = SchemeSpec.of("Genie")
        algorithm = spec.build_factory()(small_channel)
        assert algorithm.name == "Genie"

    def test_registry_covers_all_names(self):
        for name in ("Random", "Scan", "Proposed", "Bidirectional", "UCB"):
            assert name in SCHEME_BUILDERS

    def test_params_hashable(self):
        assert hash(SchemeSpec.of("Proposed", mu=0.1)) is not None


class TestRunTrialsParallel:
    SPECS = (
        SchemeSpec.of("Random"),
        SchemeSpec.of("Proposed", measurements_per_slot=4),
    )

    def test_inprocess_path(self, small_config):
        trials = run_trials_parallel(
            small_config, self.SPECS, 0.3, 3, base_seed=5, max_workers=1
        )
        assert len(trials) == 3
        for trial in trials:
            assert set(trial) == {"Random", "Proposed"}
            for outcome in trial.values():
                assert isinstance(outcome, ParallelOutcome)
                assert outcome.loss_db >= 0.0

    def test_matches_serial_runner(self, small_config, small_scenario):
        """Same seeds -> identical selections as the serial runner."""
        parallel = run_trials_parallel(
            small_config, self.SPECS, 0.3, 2, base_seed=9, max_workers=1
        )
        schemes = {spec.name: spec.build_factory() for spec in self.SPECS}
        serial = run_trials(small_scenario, schemes, 0.3, 2, base_seed=9)
        for par_trial, ser_trial in zip(parallel, serial):
            for name in schemes:
                assert par_trial[name].selected == ser_trial[name].result.selected
                assert par_trial[name].loss_db == pytest.approx(ser_trial[name].loss_db)

    def test_multiprocess_matches_inprocess(self, small_config):
        solo = run_trials_parallel(
            small_config, self.SPECS, 0.3, 2, base_seed=11, max_workers=1
        )
        pooled = run_trials_parallel(
            small_config, self.SPECS, 0.3, 2, base_seed=11, max_workers=2
        )
        for a, b in zip(solo, pooled):
            for name in ("Random", "Proposed"):
                assert a[name].selected == b[name].selected
                assert a[name].loss_db == pytest.approx(b[name].loss_db)

    def test_validation(self, small_config):
        with pytest.raises(ConfigurationError):
            run_trials_parallel(small_config, self.SPECS, 0.3, 0)
        with pytest.raises(ConfigurationError):
            run_trials_parallel(small_config, (), 0.3, 1)
        with pytest.raises(ConfigurationError):
            run_trials_parallel(
                small_config,
                (SchemeSpec.of("Random"), SchemeSpec.of("Random")),
                0.3,
                1,
            )
