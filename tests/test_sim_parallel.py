"""Tests for the process-parallel trial runner."""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.baselines.random_search import RandomSearch
from repro.exceptions import ConfigurationError
from repro.obs import MetricsRecorder, use_recorder
from repro.sim.parallel import (
    SCHEME_BUILDERS,
    BrokenProcessPool,
    ParallelOutcome,
    SchemeSpec,
    run_trials_parallel,
)
from repro.sim.runner import run_trials


class TestSchemeSpec:
    def test_of_known(self):
        spec = SchemeSpec.of("Proposed", measurements_per_slot=4)
        assert spec.name == "Proposed"
        assert dict(spec.params) == {"measurements_per_slot": 4}

    def test_of_unknown(self):
        with pytest.raises(ConfigurationError):
            SchemeSpec.of("NotAScheme")

    def test_factory_builds_scheme(self, small_channel):
        spec = SchemeSpec.of("Random")
        algorithm = spec.build_factory()(small_channel)
        assert algorithm.name == "Random"

    def test_genie_gets_channel(self, small_channel):
        spec = SchemeSpec.of("Genie")
        algorithm = spec.build_factory()(small_channel)
        assert algorithm.name == "Genie"

    def test_registry_covers_all_names(self):
        for name in ("Random", "Scan", "Proposed", "Bidirectional", "UCB"):
            assert name in SCHEME_BUILDERS

    def test_params_hashable(self):
        assert hash(SchemeSpec.of("Proposed", mu=0.1)) is not None


class TestRunTrialsParallel:
    SPECS = (
        SchemeSpec.of("Random"),
        SchemeSpec.of("Proposed", measurements_per_slot=4),
    )

    def test_inprocess_path(self, small_config):
        trials = run_trials_parallel(
            small_config, self.SPECS, 0.3, 3, base_seed=5, max_workers=1
        )
        assert len(trials) == 3
        for trial in trials:
            assert set(trial) == {"Random", "Proposed"}
            for outcome in trial.values():
                assert isinstance(outcome, ParallelOutcome)
                assert outcome.loss_db >= 0.0

    def test_matches_serial_runner(self, small_config, small_scenario):
        """Same seeds -> identical selections as the serial runner."""
        parallel = run_trials_parallel(
            small_config, self.SPECS, 0.3, 2, base_seed=9, max_workers=1
        )
        schemes = {spec.name: spec.build_factory() for spec in self.SPECS}
        serial = run_trials(small_scenario, schemes, 0.3, 2, base_seed=9)
        for par_trial, ser_trial in zip(parallel, serial):
            for name in schemes:
                assert par_trial[name].selected == ser_trial[name].result.selected
                assert par_trial[name].loss_db == pytest.approx(ser_trial[name].loss_db)

    def test_multiprocess_matches_inprocess(self, small_config):
        solo = run_trials_parallel(
            small_config, self.SPECS, 0.3, 2, base_seed=11, max_workers=1
        )
        pooled = run_trials_parallel(
            small_config, self.SPECS, 0.3, 2, base_seed=11, max_workers=2
        )
        for a, b in zip(solo, pooled):
            for name in ("Random", "Proposed"):
                assert a[name].selected == b[name].selected
                assert a[name].loss_db == pytest.approx(b[name].loss_db)

    def test_validation(self, small_config):
        with pytest.raises(ConfigurationError):
            run_trials_parallel(small_config, self.SPECS, 0.3, 0)
        with pytest.raises(ConfigurationError):
            run_trials_parallel(small_config, (), 0.3, 1)
        with pytest.raises(ConfigurationError):
            run_trials_parallel(
                small_config,
                (SchemeSpec.of("Random"), SchemeSpec.of("Random")),
                0.3,
                1,
            )


class _AlwaysBrokenFuture:
    def result(self, timeout=None):
        raise BrokenProcessPool("worker died before the batch returned")


class _AlwaysBrokenPool:
    """Stand-in executor whose every batch dies mid-flight."""

    def __init__(self, *args, **kwargs):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, *args, **kwargs):
        return _AlwaysBrokenFuture()


class _CrashInWorker(RandomSearch):
    """Hard-kills the process unless it is the test's parent process."""

    name = "Crash"

    def align(self, context, rng):
        if os.getpid() != int(os.environ.get("REPRO_TEST_PARENT_PID", "-1")):
            os._exit(1)
        return super().align(context, rng)


class TestBrokenPoolFallback:
    SPECS = (SchemeSpec.of("Random"),)

    def test_broken_pool_reruns_batches_in_process(self, small_config, monkeypatch):
        monkeypatch.setattr(
            "repro.sim.parallel.ProcessPoolExecutor", _AlwaysBrokenPool
        )
        recorder = MetricsRecorder()
        with use_recorder(recorder):
            fallback = run_trials_parallel(
                small_config, self.SPECS, 0.3, 3, base_seed=13, max_workers=2
            )
        assert recorder.metrics.counter("parallel.pool_broken") >= 1.0
        reference = run_trials_parallel(
            small_config, self.SPECS, 0.3, 3, base_seed=13, max_workers=1
        )
        assert len(fallback) == 3
        for a, b in zip(fallback, reference):
            assert a["Random"].selected == b["Random"].selected
            assert a["Random"].loss_db == b["Random"].loss_db

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="needs fork so the patched registry reaches pool workers",
    )
    def test_real_worker_crash_falls_back(self, small_config, monkeypatch):
        monkeypatch.setitem(SCHEME_BUILDERS, "Crash", _CrashInWorker)
        monkeypatch.setenv("REPRO_TEST_PARENT_PID", str(os.getpid()))
        specs = (SchemeSpec.of("Crash"),)
        pooled = run_trials_parallel(
            small_config, specs, 0.3, 2, base_seed=3, max_workers=2
        )
        solo = run_trials_parallel(
            small_config, specs, 0.3, 2, base_seed=3, max_workers=1
        )
        assert len(pooled) == 2
        for a, b in zip(pooled, solo):
            assert a["Crash"].selected == b["Crash"].selected
            assert a["Crash"].loss_db == b["Crash"].loss_db
