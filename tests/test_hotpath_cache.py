"""Hot-path cache suite: exactness, invalidation, and determinism.

The performance layer added around the simulation hot path — the
codebook gain cache, the warm-started ML solves, and the batched
trial engine — is only admissible because it is *exact*: with a fixed
seed, results must be bit-identical whether the caches are on or off,
whether trials run serially or across worker processes, and however the
parallel trials are batched. This module pins those guarantees down,
alongside unit tests of the cache bookkeeping itself.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.arrays.codebook import (
    CodebookGainCache,
    gain_cache_enabled,
    set_gain_cache_enabled,
    use_gain_cache,
)
from repro.estimation.ml_covariance import MlCovarianceEstimator
from repro.exceptions import ConfigurationError, ValidationError
from repro.measurement.budget import MeasurementBudget
from repro.sim.context import ScenarioContext, get_context
from repro.sim.parallel import SchemeSpec, run_trials_parallel
from repro.sim.runner import run_trials, standard_schemes
from repro.types import BeamPair
from repro.utils.linalg import quadratic_forms, random_psd


def _outcome_fingerprint(trials):
    """Everything that must be invariant under caching and batching."""
    return [
        (
            name,
            outcome.loss_db,
            outcome.result.selected,
            outcome.result.measurements_used,
            outcome.result.selected_power,
        )
        for trial in trials
        for name, outcome in trial.items()
    ]


def _parallel_fingerprint(trials):
    """The cross-process-safe subset of the outcome fingerprint."""
    return [
        (name, outcome.loss_db, outcome.selected, outcome.measurements_used)
        for trial in trials
        for name, outcome in trial.items()
    ]


def _frozen_psd(size: int, rank: int, seed: int) -> np.ndarray:
    """A read-only PSD matrix, as the ML estimator hands its outputs out."""
    matrix = random_psd(size, rank, np.random.default_rng(seed))
    matrix.setflags(write=False)
    return matrix


# ----------------------------------------------------------------------
# CodebookGainCache unit tests
# ----------------------------------------------------------------------


class TestCodebookGainCache:
    @pytest.fixture()
    def vectors(self, rx_codebook):
        return rx_codebook.vectors

    def test_hit_returns_identical_array(self, vectors):
        cache = CodebookGainCache(vectors)
        q = _frozen_psd(vectors.shape[0], 2, seed=7)
        first = cache.gains(q)
        second = cache.gains(q)
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_result_matches_uncached_bitwise(self, vectors):
        cache = CodebookGainCache(vectors)
        q = _frozen_psd(vectors.shape[0], 2, seed=7)
        cached = cache.gains(q)
        raw = quadratic_forms(q, vectors)
        assert cached.tobytes() == raw.tobytes()

    def test_result_is_read_only(self, vectors):
        cache = CodebookGainCache(vectors)
        gains = cache.gains(_frozen_psd(vectors.shape[0], 2, seed=7))
        assert not gains.flags.writeable
        with pytest.raises(ValueError):
            gains[0] = 0.0

    def test_writeable_covariance_rekeyed_after_mutation(self, vectors):
        """In-place mutation must never serve a stale evaluation."""
        cache = CodebookGainCache(vectors)
        q = random_psd(vectors.shape[0], 2, np.random.default_rng(7))
        before = cache.gains(q).copy()
        q *= 2.0
        after = cache.gains(q)
        assert cache.misses == 2 and cache.hits == 0
        np.testing.assert_allclose(after, 2.0 * before, rtol=1e-12)

    def test_writeable_covariance_equal_content_hits(self, vectors):
        """Distinct writeable arrays with equal bytes share one entry."""
        cache = CodebookGainCache(vectors)
        q1 = random_psd(vectors.shape[0], 2, np.random.default_rng(7))
        q2 = q1.copy()
        first = cache.gains(q1)
        second = cache.gains(q2)
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self, vectors):
        cache = CodebookGainCache(vectors, capacity=2)
        covariances = [_frozen_psd(vectors.shape[0], 2, seed=s) for s in (1, 2, 3)]
        for q in covariances:
            cache.gains(q)
        assert len(cache) == 2 and cache.evictions == 1
        # Oldest entry evicted: re-evaluating it is a miss, newest is a hit.
        cache.gains(covariances[-1])
        assert cache.hits == 1
        cache.gains(covariances[0])
        assert cache.misses == 4

    def test_dead_identity_key_never_aliases(self, vectors):
        """A recycled id() cannot resurrect a dead array's entry."""
        cache = CodebookGainCache(vectors)
        q = _frozen_psd(vectors.shape[0], 2, seed=7)
        key = cache._key(q)
        cache.gains(q)
        del q
        gc.collect()
        other = _frozen_psd(vectors.shape[0], 2, seed=8)
        assert not cache._valid_hit(key, other)

    def test_clear_drops_entries_keeps_counters(self, vectors):
        cache = CodebookGainCache(vectors)
        cache.gains(_frozen_psd(vectors.shape[0], 2, seed=7))
        cache.clear()
        assert len(cache) == 0 and cache.misses == 1

    def test_capacity_validation(self, vectors):
        with pytest.raises(ValidationError):
            CodebookGainCache(vectors, capacity=0)


class TestGainCacheToggle:
    def test_codebook_routes_through_cache_when_enabled(self, rx_codebook):
        q = _frozen_psd(rx_codebook.vectors.shape[0], 2, seed=11)
        with use_gain_cache(True):
            hits_before = rx_codebook.gain_cache.hits
            first = rx_codebook.gains(q)
            second = rx_codebook.gains(q)
        assert second is first
        assert rx_codebook.gain_cache.hits == hits_before + 1

    def test_disabled_cache_bypasses_memoization(self, rx_codebook):
        q = _frozen_psd(rx_codebook.vectors.shape[0], 2, seed=11)
        with use_gain_cache(False):
            misses_before = rx_codebook.gain_cache.misses
            first = rx_codebook.gains(q)
            second = rx_codebook.gains(q)
            assert rx_codebook.gain_cache.misses == misses_before
        assert second is not first
        assert first.tobytes() == second.tobytes()

    def test_cache_on_off_same_values(self, rx_codebook):
        q = _frozen_psd(rx_codebook.vectors.shape[0], 2, seed=11)
        with use_gain_cache(True):
            cached = rx_codebook.gains(q)
        with use_gain_cache(False):
            uncached = rx_codebook.gains(q)
        assert cached.tobytes() == uncached.tobytes()

    def test_invalidation_through_codebook(self, rx_codebook):
        """Satellite check: Codebook.gains sees content changes."""
        q = random_psd(rx_codebook.vectors.shape[0], 2, np.random.default_rng(13))
        with use_gain_cache(True):
            before = rx_codebook.gains(q).copy()
            q *= 3.0
            after = rx_codebook.gains(q)
        np.testing.assert_allclose(after, 3.0 * before, rtol=1e-12)

    def test_set_gain_cache_enabled_returns_previous(self):
        original = gain_cache_enabled()
        try:
            assert set_gain_cache_enabled(False) == original
            assert gain_cache_enabled() is False
            assert set_gain_cache_enabled(True) is False
        finally:
            set_gain_cache_enabled(original)

    def test_context_manager_restores_on_error(self):
        original = gain_cache_enabled()
        with pytest.raises(RuntimeError):
            with use_gain_cache(not original):
                raise RuntimeError("boom")
        assert gain_cache_enabled() == original


# ----------------------------------------------------------------------
# Warm-started ML estimator telemetry
# ----------------------------------------------------------------------


class TestEstimatorWarmStart:
    @pytest.fixture()
    def probe_setup(self, rx_codebook):
        rng = np.random.default_rng(17)
        indices = rng.choice(rx_codebook.num_beams, 3, replace=False)
        probes = rx_codebook.vectors[:, indices]
        powers = np.abs(rng.normal(size=3)) * 0.1 + 0.01
        return probes, powers

    def test_cold_then_warm_counters(self, probe_setup):
        probes, powers = probe_setup
        estimator = MlCovarianceEstimator()
        estimator.estimate(probes, powers, 0.01)
        assert estimator.cold_solves == 1 and estimator.warm_solves == 0
        estimator.estimate(probes, powers, 0.01)
        assert estimator.cold_solves == 1 and estimator.warm_solves == 1
        assert estimator.num_solves == 2
        assert estimator.iterations_saved >= 0.0

    def test_estimates_are_frozen(self, probe_setup):
        probes, powers = probe_setup
        solution = MlCovarianceEstimator().estimate(probes, powers, 0.01)
        assert not solution.flags.writeable

    def test_reset_forgets_warm_start(self, probe_setup):
        probes, powers = probe_setup
        estimator = MlCovarianceEstimator()
        estimator.estimate(probes, powers, 0.01)
        estimator.reset()
        assert estimator.warm_start is None
        estimator.estimate(probes, powers, 0.01)
        assert estimator.cold_solves == 2

    def test_external_warm_start_drops_stale_basis(self, probe_setup):
        """A hand-planted warm start must not reuse the old basis."""
        probes, powers = probe_setup
        estimator = MlCovarianceEstimator()
        first = estimator.estimate(probes, powers, 0.01)
        planted = np.array(first)  # new object, same values
        planted.setflags(write=False)
        estimator.warm_start = planted
        estimator.estimate(probes, powers, 0.01)
        assert estimator.warm_solves == 1  # still counted as warm

    def test_basis_reuse_matches_recompute(self, probe_setup):
        """reuse_basis is a cost optimization, not a different estimator."""
        probes, powers = probe_setup
        with_reuse = MlCovarianceEstimator(reuse_basis=True)
        without = MlCovarianceEstimator(reuse_basis=False)
        for _ in range(3):
            reused = with_reuse.estimate(probes, powers, 0.01)
            recomputed = without.estimate(probes, powers, 0.01)
        np.testing.assert_allclose(reused, recomputed, rtol=1e-6, atol=1e-9)


# ----------------------------------------------------------------------
# Shared scenario context
# ----------------------------------------------------------------------


class TestScenarioContext:
    def test_pair_table_round_trip(self, small_scenario):
        context = small_scenario.context()
        for flat in range(context.total_pairs):
            pair = context.pair_of(flat)
            assert context.flat_of(pair) == flat
        assert context.total_pairs == (
            small_scenario.tx_codebook.num_beams * small_scenario.rx_codebook.num_beams
        )

    def test_pair_table_immutable(self, small_scenario):
        context = small_scenario.context()
        assert not context.pair_table.flags.writeable

    def test_scenario_context_is_shared(self, small_scenario):
        assert small_scenario.context() is small_scenario.context()

    def test_get_context_memoized_per_config(self, small_config):
        assert get_context(small_config) is get_context(small_config)
        assert isinstance(get_context(small_config), ScenarioContext)

    def test_out_of_range_rejected(self, small_scenario):
        context = small_scenario.context()
        with pytest.raises(ValidationError):
            context.pair_of(context.total_pairs)
        with pytest.raises(ValidationError):
            context.flat_of(BeamPair(0, small_scenario.rx_codebook.num_beams))

    def test_make_budget_matches_search_rate(self, small_scenario):
        context = small_scenario.context()
        budget = context.make_budget(0.3)
        expected = MeasurementBudget.from_search_rate(context.total_pairs, 0.3)
        assert (budget.total_pairs, budget.limit) == (
            expected.total_pairs,
            expected.limit,
        )


# ----------------------------------------------------------------------
# End-to-end determinism regressions
# ----------------------------------------------------------------------


class TestDeterminism:
    SPECS = (
        SchemeSpec.of("Random"),
        SchemeSpec.of("Scan"),
        SchemeSpec.of("Proposed", measurements_per_slot=4),
    )

    def test_run_trials_cache_on_off_bit_identical(self, small_scenario):
        with use_gain_cache(True):
            cached = run_trials(
                small_scenario,
                standard_schemes(measurements_per_slot=4),
                0.3,
                3,
                base_seed=21,
            )
        with use_gain_cache(False):
            uncached = run_trials(
                small_scenario,
                standard_schemes(measurements_per_slot=4),
                0.3,
                3,
                base_seed=21,
            )
        assert _outcome_fingerprint(cached) == _outcome_fingerprint(uncached)

    def test_repeat_runs_share_cached_context(self, small_scenario):
        """Back-to-back runs reuse the warm context without drifting."""
        schemes = standard_schemes(measurements_per_slot=4)
        first = run_trials(small_scenario, schemes, 0.3, 2, base_seed=22)
        second = run_trials(
            small_scenario, standard_schemes(measurements_per_slot=4), 0.3, 2,
            base_seed=22,
        )
        assert _outcome_fingerprint(first) == _outcome_fingerprint(second)

    def test_parallel_matches_serial_fallback(self, small_config):
        serial = run_trials_parallel(
            small_config, self.SPECS, 0.3, 4, base_seed=23, max_workers=1
        )
        parallel = run_trials_parallel(
            small_config, self.SPECS, 0.3, 4, base_seed=23, max_workers=2
        )
        assert _parallel_fingerprint(serial) == _parallel_fingerprint(parallel)

    @pytest.mark.parametrize("batch_size", [1, 3, None])
    def test_batch_size_never_changes_outcomes(self, small_config, batch_size):
        reference = run_trials_parallel(
            small_config, self.SPECS, 0.3, 4, base_seed=23, max_workers=1
        )
        batched = run_trials_parallel(
            small_config,
            self.SPECS,
            0.3,
            4,
            base_seed=23,
            max_workers=2,
            batch_size=batch_size,
        )
        assert _parallel_fingerprint(reference) == _parallel_fingerprint(batched)

    def test_batch_size_validation(self, small_config):
        with pytest.raises(ConfigurationError):
            run_trials_parallel(
                small_config, self.SPECS, 0.3, 2, max_workers=2, batch_size=0
            )

    def test_parallel_cache_on_off_identical(self, small_config):
        with use_gain_cache(True):
            cached = run_trials_parallel(
                small_config, self.SPECS, 0.3, 3, base_seed=29, max_workers=1
            )
        with use_gain_cache(False):
            uncached = run_trials_parallel(
                small_config, self.SPECS, 0.3, 3, base_seed=29, max_workers=1
            )
        assert _parallel_fingerprint(cached) == _parallel_fingerprint(uncached)
