"""Tests for the bidirectional alignment extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import AlignmentContext
from repro.core.bidirectional import BidirectionalAlignment
from repro.exceptions import ValidationError
from repro.measurement.budget import MeasurementBudget
from repro.measurement.measurer import MeasurementEngine
from repro.sim.metrics import loss_from_matrix_db


def _context(small_channel, tx_codebook, rx_codebook, rng, limit):
    engine = MeasurementEngine(small_channel, rng, fading_blocks=4)
    budget = MeasurementBudget(
        total_pairs=tx_codebook.num_beams * rx_codebook.num_beams, limit=limit
    )
    return AlignmentContext(tx_codebook, rx_codebook, engine, budget)


class TestConstruction:
    def test_invalid_j(self):
        with pytest.raises(ValidationError):
            BidirectionalAlignment(measurements_per_slot=0)

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            BidirectionalAlignment(signal_threshold=-0.1)


class TestExecution:
    def test_spends_budget(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 30)
        result = BidirectionalAlignment(measurements_per_slot=4).align(context, rng)
        assert result.measurements_used == 30
        assert result.algorithm == "Bidirectional"

    def test_no_repeated_pairs(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 40)
        result = BidirectionalAlignment(measurements_per_slot=4).align(context, rng)
        pairs = [m.pair for m in result.trace]
        assert len(pairs) == len(set(pairs))

    def test_forward_slots_fix_tx(self, small_channel, tx_codebook, rx_codebook, rng):
        """Even slots dwell on one TX beam; odd slots dwell on one RX beam."""
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 32)
        result = BidirectionalAlignment(measurements_per_slot=4).align(context, rng)
        by_slot = {}
        for m in result.trace:
            by_slot.setdefault(m.slot, []).append(m.pair)
        for slot, pairs in by_slot.items():
            if slot % 2 == 0:
                assert len({p.tx_index for p in pairs}) == 1
            else:
                assert len({p.rx_index for p in pairs}) == 1

    def test_full_budget_measures_everything(
        self, small_channel, tx_codebook, rx_codebook, rng
    ):
        total = tx_codebook.num_beams * rx_codebook.num_beams
        context = _context(small_channel, tx_codebook, rx_codebook, rng, total)
        result = BidirectionalAlignment(measurements_per_slot=4).align(context, rng)
        assert result.measurements_used == total

    def test_reasonable_quality(self, small_channel, tx_codebook, rx_codebook, rng):
        snr = small_channel.mean_snr_matrix(tx_codebook, rx_codebook)
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 50)
        result = BidirectionalAlignment(measurements_per_slot=4).align(context, rng)
        assert loss_from_matrix_db(snr, result.selected) < 8.0

    def test_deterministic(self, small_channel, tx_codebook, rx_codebook):
        outcomes = []
        for _ in range(2):
            context = _context(
                small_channel, tx_codebook, rx_codebook, np.random.default_rng(3), 24
            )
            result = BidirectionalAlignment(measurements_per_slot=4).align(
                context, np.random.default_rng(4)
            )
            outcomes.append(result.selected)
        assert outcomes[0] == outcomes[1]
