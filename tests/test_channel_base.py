"""Tests for the clustered channel model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.codebook import Codebook
from repro.arrays.upa import UniformPlanarArray
from repro.channel.base import ClusteredChannel, Subpath
from repro.exceptions import ValidationError
from repro.utils.geometry import Direction


class TestSubpath:
    def test_negative_power_rejected(self):
        with pytest.raises(ValidationError):
            Subpath(power=-0.1, tx_direction=Direction(0.0), rx_direction=Direction(0.0))


class TestConstruction:
    def test_power_normalization(self, small_channel):
        assert small_channel.powers.sum() == pytest.approx(1.0)

    def test_custom_total_power(self, upa22, upa24):
        sub = Subpath(power=5.0, tx_direction=Direction(0.1), rx_direction=Direction(0.2))
        channel = ClusteredChannel(upa22, upa24, [sub], total_power=3.0)
        assert channel.powers.sum() == pytest.approx(3.0)

    def test_no_normalization(self, upa22, upa24):
        sub = Subpath(power=5.0, tx_direction=Direction(0.1), rx_direction=Direction(0.2))
        channel = ClusteredChannel(upa22, upa24, [sub], total_power=None)
        assert channel.powers.sum() == pytest.approx(5.0)

    def test_empty_subpaths_rejected(self, upa22, upa24):
        with pytest.raises(ValidationError):
            ClusteredChannel(upa22, upa24, [])

    def test_steering_shapes(self, small_channel):
        assert small_channel.tx_steering.shape == (4, 2)
        assert small_channel.rx_steering.shape == (8, 2)

    def test_num_subpaths(self, small_channel):
        assert small_channel.num_subpaths == 2

    def test_repr(self, small_channel):
        assert "ClusteredChannel" in repr(small_channel)


class TestSampling:
    def test_sample_shape(self, small_channel, rng):
        h = small_channel.sample(rng)
        assert h.shape == (8, 4)
        assert np.iscomplexobj(h)

    def test_second_order_statistics(self, small_channel, rng):
        """Empirical E[H H^H] converges to the closed-form covariance."""
        accumulator = np.zeros((8, 8), dtype=complex)
        count = 4000
        for _ in range(count):
            h = small_channel.sample(rng)
            accumulator += h @ h.conj().T
        empirical = accumulator / count
        expected = small_channel.full_rx_covariance()
        assert np.linalg.norm(empirical - expected) / np.linalg.norm(expected) < 0.1

    def test_beamformed_coefficients_match_matrix(self, small_channel, rng):
        """v^H H u computed via coefficients equals the matrix route."""
        tx = np.full(4, 0.5, dtype=complex)
        rx = np.full(8, 1 / np.sqrt(8), dtype=complex)
        coeffs = small_channel.beamformed_coefficients(tx, rx)
        # Reconstruct with identical gains: regenerate with a fixed seed.
        gains_rng = np.random.default_rng(0)
        from repro.utils.rng import complex_normal

        gains = complex_normal(gains_rng, 2) * np.sqrt(small_channel.powers)
        direct = (small_channel.rx_steering * gains) @ small_channel.tx_steering.conj().T
        assert rx.conj() @ direct @ tx == pytest.approx(np.sum(gains * coeffs))

    def test_sample_beamformed_statistics(self, small_channel, rng):
        tx = np.full(4, 0.5, dtype=complex)
        rx = np.full(8, 1 / np.sqrt(8), dtype=complex)
        samples = small_channel.sample_beamformed(tx, rx, rng, count=20000)
        q = small_channel.rx_covariance(tx)
        expected = float(np.real(rx.conj() @ q @ rx))
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(expected, rel=0.05)


class TestCovariance:
    def test_rx_covariance_psd(self, small_channel):
        tx = np.full(4, 0.5, dtype=complex)
        q = small_channel.rx_covariance(tx)
        assert np.min(np.linalg.eigvalsh(q)) >= -1e-12

    def test_rx_covariance_rank_bound(self, small_channel):
        tx = np.full(4, 0.5, dtype=complex)
        values = np.linalg.eigvalsh(small_channel.rx_covariance(tx))
        significant = np.sum(values > 1e-10 * values.max())
        assert significant <= small_channel.num_subpaths

    def test_full_covariance_trace(self, small_channel):
        """Unit-norm TX steering makes trace(E[HH^H]) == total power."""
        trace = float(np.real(np.trace(small_channel.full_rx_covariance())))
        assert trace == pytest.approx(1.0)

    def test_rejects_non_unit_tx(self, small_channel):
        with pytest.raises(ValidationError):
            small_channel.rx_covariance(np.ones(4, dtype=complex))


class TestMeanSnr:
    def test_mean_snr_formula(self, small_channel):
        """R(u, v) = gamma * sum_k P_k |a_tx^H u|^2 |a_rx^H v|^2."""
        tx = np.full(4, 0.5, dtype=complex)
        rx = np.full(8, 1 / np.sqrt(8), dtype=complex)
        tx_g = np.abs(small_channel.tx_steering.conj().T @ tx) ** 2
        rx_g = np.abs(small_channel.rx_steering.conj().T @ rx) ** 2
        expected = 100.0 * float(np.sum(small_channel.powers * tx_g * rx_g))
        assert small_channel.mean_snr(tx, rx) == pytest.approx(expected)

    def test_mean_snr_matrix_consistency(self, small_channel, tx_codebook, rx_codebook):
        matrix = small_channel.mean_snr_matrix(tx_codebook, rx_codebook)
        assert matrix.shape == (tx_codebook.num_beams, rx_codebook.num_beams)
        for i in (0, 2):
            for j in (0, 5, 10):
                assert matrix[i, j] == pytest.approx(
                    small_channel.mean_snr(tx_codebook.beam(i), rx_codebook.beam(j))
                )

    def test_mean_snr_nonnegative(self, small_channel, tx_codebook, rx_codebook):
        matrix = small_channel.mean_snr_matrix(tx_codebook, rx_codebook)
        assert np.all(matrix >= 0)

    def test_optimal_pair(self, small_channel, tx_codebook, rx_codebook):
        tx_i, rx_i, value = small_channel.optimal_pair(tx_codebook, rx_codebook)
        matrix = small_channel.mean_snr_matrix(tx_codebook, rx_codebook)
        assert value == pytest.approx(matrix.max())
        assert matrix[tx_i, rx_i] == pytest.approx(value)

    def test_matrix_codebook_mismatch(self, small_channel, rx_codebook):
        wrong = Codebook.for_array(UniformPlanarArray(3, 3))
        with pytest.raises(ValidationError):
            small_channel.mean_snr_matrix(wrong, rx_codebook)

    def test_aligned_beams_dominate(self, upa22, upa24):
        """Steering straight at a single path's angles beats everything."""
        from repro.arrays.steering import steering_vector

        d_tx, d_rx = Direction(0.4, 0.1), Direction(-0.3, 0.15)
        channel = ClusteredChannel(
            upa22,
            upa24,
            [Subpath(power=1.0, tx_direction=d_tx, rx_direction=d_rx)],
        )
        aligned = channel.mean_snr(
            steering_vector(upa22, d_tx), steering_vector(upa24, d_rx)
        )
        assert aligned == pytest.approx(100.0, rel=1e-9)  # gamma * 1 * 1
        misaligned = channel.mean_snr(
            steering_vector(upa22, Direction(-1.0, -0.4)),
            steering_vector(upa24, Direction(1.2, 0.5)),
        )
        assert misaligned < aligned
