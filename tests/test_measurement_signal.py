"""Tests for the pilot/matched-filter signal model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.measurement.signal import (
    PilotSignal,
    matched_filter,
    measurement_statistic,
    simulate_measurement,
)


class TestPilotSignal:
    def test_waveform_energy(self):
        pilot = PilotSignal(energy=2.5, symbols=10)
        waveform = pilot.waveform()
        assert np.sum(np.abs(waveform) ** 2) == pytest.approx(2.5)
        assert len(waveform) == 10

    def test_invalid_energy(self):
        with pytest.raises(ValidationError):
            PilotSignal(energy=0.0)

    def test_invalid_symbols(self):
        with pytest.raises(ValidationError):
            PilotSignal(symbols=0)


class TestMatchedFilter:
    def test_recovers_gain_noiseless(self):
        """Eq. 9: matched filter on g*s returns exactly g."""
        pilot = PilotSignal(energy=3.0, symbols=8).waveform()
        gain = 0.7 - 0.2j
        assert matched_filter(gain * pilot, pilot) == pytest.approx(gain)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            matched_filter(np.ones(4), np.ones(5))

    def test_zero_energy_pilot(self):
        with pytest.raises(ValidationError):
            matched_filter(np.ones(4), np.zeros(4))

    def test_statistic(self):
        assert measurement_statistic(3 + 4j) == pytest.approx(25.0)


class TestSimulateMeasurement:
    def test_noiseless_exact(self, rng):
        pilot = PilotSignal(energy=1.0, symbols=4)
        z = simulate_measurement(0.3 + 0.1j, pilot, noise_power=0.0, rng=rng)
        assert z == pytest.approx(0.3 + 0.1j)

    def test_noise_variance_scaling(self, rng):
        """Residual noise variance after matched filtering is N0 / Es —
        the normalization that makes Eq. (14)'s 1/gamma term correct."""
        pilot = PilotSignal(energy=4.0, symbols=16)
        n0 = 0.8
        samples = np.array(
            [simulate_measurement(0.0, pilot, n0, rng) for _ in range(4000)]
        )
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(n0 / 4.0, rel=0.08)

    def test_agrees_with_shortcut_model(self, rng):
        """Waveform-level simulation matches g + CN(0, N0/Es) stats."""
        pilot = PilotSignal(energy=2.0, symbols=8)
        gain = 0.5 + 0.5j
        n0 = 0.4
        samples = np.array(
            [simulate_measurement(gain, pilot, n0, rng) for _ in range(4000)]
        )
        assert np.mean(samples) == pytest.approx(gain, abs=0.02)
        assert np.var(samples) == pytest.approx(n0 / 2.0, rel=0.08)

    def test_negative_noise_rejected(self, rng):
        with pytest.raises(ValidationError):
            simulate_measurement(0.0, PilotSignal(), -1.0, rng)
