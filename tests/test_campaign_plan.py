"""Tests for campaign shard planning and digests."""

from __future__ import annotations

import dataclasses

import pytest

from repro.campaign.plan import (
    DEFAULT_SHARD_TRIALS,
    CampaignPlan,
    ShardSpec,
    plan_effectiveness_sweep,
    plan_from_payload,
    standard_scheme_specs,
)
from repro.exceptions import ConfigurationError
from repro.sim.parallel import SchemeSpec
from repro.sim.runner import standard_schemes


@pytest.fixture
def specs():
    return (SchemeSpec.of("Random"), SchemeSpec.of("Proposed", measurements_per_slot=4))


@pytest.fixture
def shard(small_config, specs) -> ShardSpec:
    return ShardSpec(
        config=small_config,
        schemes=specs,
        search_rate=0.2,
        base_seed=7,
        trial_start=4,
        trial_count=4,
    )


class TestShardSpec:
    def test_digest_is_stable(self, shard):
        clone = dataclasses.replace(shard)
        assert clone.digest == shard.digest

    def test_digest_changes_with_every_spec_field(self, shard, small_config):
        variants = [
            dataclasses.replace(shard, search_rate=0.3),
            dataclasses.replace(shard, base_seed=8),
            dataclasses.replace(shard, trial_start=0),
            dataclasses.replace(shard, trial_count=2),
            dataclasses.replace(
                shard, config=dataclasses.replace(small_config, snr_db=10.0)
            ),
            dataclasses.replace(shard, schemes=(SchemeSpec.of("Random"),)),
            dataclasses.replace(
                shard,
                schemes=(
                    SchemeSpec.of("Random"),
                    SchemeSpec.of("Proposed", measurements_per_slot=8),
                ),
            ),
        ]
        digests = {variant.digest for variant in variants}
        assert shard.digest not in digests
        assert len(digests) == len(variants)

    def test_trial_indices(self, shard):
        assert shard.trial_indices == (4, 5, 6, 7)

    def test_payload_roundtrip(self, shard):
        rebuilt = ShardSpec.from_payload(shard.spec_payload())
        assert rebuilt == shard
        assert rebuilt.digest == shard.digest

    def test_rejects_bad_geometry(self, small_config, specs):
        with pytest.raises(ConfigurationError):
            ShardSpec(small_config, specs, 1.5, 0, 0, 1)
        with pytest.raises(ConfigurationError):
            ShardSpec(small_config, specs, 0.2, 0, -1, 1)
        with pytest.raises(ConfigurationError):
            ShardSpec(small_config, specs, 0.2, 0, 0, 0)
        with pytest.raises(ConfigurationError):
            ShardSpec(small_config, (), 0.2, 0, 0, 1)


class TestPlanEffectivenessSweep:
    def test_covers_grid_rate_major(self, small_config, specs):
        plan = plan_effectiveness_sweep(
            small_config, specs, (0.1, 0.2), 5, base_seed=3, shard_trials=2
        )
        assert plan.search_rates == (0.1, 0.2)
        assert len(plan.shards) == 6  # ceil(5/2) shards per rate
        assert plan.total_trials == 10
        for rate in plan.search_rates:
            ranges = [
                (shard.trial_start, shard.trial_count)
                for shard in plan.shards_for_rate(rate)
            ]
            assert ranges == [(0, 2), (2, 2), (4, 1)]
        # rate-major order, like effectiveness_sweep's loops
        assert [shard.search_rate for shard in plan.shards[:3]] == [0.1, 0.1, 0.1]

    def test_default_shard_size(self, small_config, specs):
        plan = plan_effectiveness_sweep(small_config, specs, (0.1,), 20)
        assert all(
            shard.trial_count <= DEFAULT_SHARD_TRIALS for shard in plan.shards
        )

    def test_plan_payload_roundtrip(self, small_config, specs):
        plan = plan_effectiveness_sweep(
            small_config, specs, (0.1, 0.2), 5, base_seed=3, shard_trials=2
        )
        rebuilt = plan_from_payload(plan.payload())
        assert isinstance(rebuilt, CampaignPlan)
        assert rebuilt == plan
        assert rebuilt.digest == plan.digest

    def test_validation(self, small_config, specs):
        with pytest.raises(ConfigurationError):
            plan_effectiveness_sweep(small_config, specs, (), 5)
        with pytest.raises(ConfigurationError):
            plan_effectiveness_sweep(small_config, specs, (2.0,), 5)
        with pytest.raises(ConfigurationError):
            plan_effectiveness_sweep(small_config, specs, (0.1, 0.1), 5)
        with pytest.raises(ConfigurationError):
            plan_effectiveness_sweep(small_config, specs, (0.1,), 0)
        with pytest.raises(ConfigurationError):
            plan_effectiveness_sweep(small_config, (), (0.1,), 5)
        with pytest.raises(ConfigurationError):
            plan_effectiveness_sweep(
                small_config, specs, (0.1,), 5, shard_trials=0
            )


class TestStandardSchemeSpecs:
    def test_mirrors_standard_schemes(self):
        specs = standard_scheme_specs(measurements_per_slot=4)
        assert [spec.name for spec in specs] == list(standard_schemes())
        proposed = specs[-1]
        assert dict(proposed.params) == {"measurements_per_slot": 4}
