"""Tests for steering-vector computation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.steering import direction_unit_vector, steering_matrix, steering_vector
from repro.arrays.ula import UniformLinearArray
from repro.arrays.upa import UniformPlanarArray
from repro.utils.geometry import Direction


class TestDirectionUnitVector:
    def test_unit_length(self):
        for az in (-1.0, 0.0, 0.7):
            for el in (-0.5, 0.0, 0.9):
                vec = direction_unit_vector(Direction(az, el))
                assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_broadside(self):
        np.testing.assert_allclose(
            direction_unit_vector(Direction(0.0, 0.0)), [0.0, 1.0, 0.0], atol=1e-12
        )

    def test_endfire(self):
        np.testing.assert_allclose(
            direction_unit_vector(Direction(np.pi / 2, 0.0)), [1.0, 0.0, 0.0], atol=1e-12
        )


class TestSteeringVector:
    def test_unit_norm(self):
        array = UniformPlanarArray(3, 5)
        vec = steering_vector(array, Direction(0.4, -0.2))
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_broadside_uniform_phase(self):
        array = UniformLinearArray(6)
        vec = steering_vector(array, Direction(0.0, 0.0))
        np.testing.assert_allclose(vec, vec[0], atol=1e-12)

    def test_ula_phase_progression(self):
        """Phase increment of a half-wavelength ULA is pi*sin(azimuth)."""
        array = UniformLinearArray(5, spacing=0.5)
        azimuth = 0.6
        vec = steering_vector(array, Direction(azimuth))
        ratios = vec[1:] / vec[:-1]
        expected = np.exp(1j * np.pi * np.sin(azimuth))
        np.testing.assert_allclose(ratios, expected, atol=1e-12)

    def test_matched_gain_is_maximal(self):
        """|a(d)^H a(d)| = 1 >= |a(d)^H a(other)|."""
        array = UniformPlanarArray(4, 4)
        d = Direction(0.3, 0.1)
        a = steering_vector(array, d)
        assert abs(np.vdot(a, a)) == pytest.approx(1.0)
        for other_az in np.linspace(-1.2, 1.2, 7):
            other = steering_vector(array, Direction(other_az, -0.4))
            assert abs(np.vdot(other, a)) <= 1.0 + 1e-12

    def test_elevation_steering_on_upa(self):
        """A vertical UPA column sees elevation, not azimuth."""
        array = UniformPlanarArray(4, 1)
        flat = steering_vector(array, Direction(0.9, 0.0))
        np.testing.assert_allclose(flat, flat[0], atol=1e-12)  # azimuth invisible
        steep = steering_vector(array, Direction(0.0, 0.5))
        assert not np.allclose(steep, steep[0])


class TestSteeringMatrix:
    def test_matches_columns(self):
        array = UniformPlanarArray(2, 3)
        directions = [Direction(0.1, 0.0), Direction(-0.8, 0.3)]
        matrix = steering_matrix(array, directions)
        for k, d in enumerate(directions):
            np.testing.assert_allclose(matrix[:, k], steering_vector(array, d), atol=1e-12)

    def test_empty(self):
        array = UniformLinearArray(4)
        assert steering_matrix(array, []).shape == (4, 0)

    def test_dft_grid_orthogonality(self):
        """Critically-sampled sine grid gives orthonormal (DFT) beams."""
        from repro.utils.geometry import uniform_sine_grid

        n = 8
        array = UniformLinearArray(n, spacing=0.5)
        directions = [Direction(float(a)) for a in uniform_sine_grid(n)]
        matrix = steering_matrix(array, directions)
        gram = matrix.conj().T @ matrix
        np.testing.assert_allclose(gram, np.eye(n), atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(
    az=st.floats(-1.4, 1.4),
    el=st.floats(-1.0, 1.0),
    rows=st.integers(1, 5),
    cols=st.integers(1, 5),
)
def test_property_steering_always_unit_norm(az, el, rows, cols):
    array = UniformPlanarArray(rows, cols)
    vec = steering_vector(array, Direction(az, el))
    assert np.linalg.norm(vec) == pytest.approx(1.0, abs=1e-9)
