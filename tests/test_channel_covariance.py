"""Tests for covariance-structure analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.covariance import eigenvalue_profile, low_rank_summary
from repro.utils.linalg import random_psd


class TestLowRankSummary:
    def test_identity_spreads_energy(self):
        summary = low_rank_summary(np.eye(10))
        assert summary.dimension == 10
        assert summary.trace == pytest.approx(10.0)
        assert summary.effective_rank_95 == 10
        assert summary.energy_top1 == pytest.approx(0.1)

    def test_rank_one_concentrates(self, rng):
        q = random_psd(8, 1, rng)
        summary = low_rank_summary(q)
        assert summary.effective_rank_95 == 1
        assert summary.energy_top1 == pytest.approx(1.0)

    def test_ordering_of_fractions(self, rng):
        summary = low_rank_summary(random_psd(12, 6, rng))
        assert summary.energy_top1 <= summary.energy_top3 <= summary.energy_top5 <= 1.0

    def test_as_row_renders(self, rng):
        row = low_rank_summary(random_psd(6, 2, rng)).as_row()
        assert "rank95" in row and "top3" in row


class TestEigenvalueProfile:
    def test_normalized(self, rng):
        profile = eigenvalue_profile(random_psd(10, 10, rng), count=10)
        assert profile.sum() == pytest.approx(1.0)

    def test_descending(self, rng):
        profile = eigenvalue_profile(random_psd(10, 5, rng), count=8)
        assert np.all(np.diff(profile) <= 1e-12)

    def test_count_truncation(self, rng):
        assert len(eigenvalue_profile(random_psd(10, 4, rng), count=3)) == 3

    def test_zero_matrix(self):
        profile = eigenvalue_profile(np.zeros((5, 5)), count=4)
        np.testing.assert_array_equal(profile, np.zeros(4))
