"""Quick-mode runs of every registered experiment.

These are integration tests of the full experiment pipeline; the quick
flag keeps each run to a few seconds. Shape assertions (who beats whom)
live in the benchmarks, where trial counts are statistically meaningful.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.experiments as experiments


class TestFigureExperiments:
    @pytest.mark.parametrize("experiment_id", ["fig5", "fig6"])
    def test_effectiveness_quick(self, experiment_id):
        result = experiments.run(experiment_id, quick=True)
        assert result.experiment_id == experiment_id
        data = result.data
        assert set(data["mean_loss_db"]) == {"Random", "Scan", "Proposed"}
        for series in data["mean_loss_db"].values():
            assert len(series) == len(data["search_rates"])
            assert all(np.isfinite(v) and v >= 0 for v in series)
        assert "search rate" in result.table

    @pytest.mark.parametrize("experiment_id", ["fig7", "fig8"])
    def test_cost_quick(self, experiment_id):
        result = experiments.run(experiment_id, quick=True)
        data = result.data
        assert set(data["required_rates"]) == {"Random", "Scan", "Proposed"}
        for series in data["required_rates"].values():
            assert len(series) == len(data["target_losses_db"])
            assert all(0.0 < rate <= 1.0 for rate in series)
            # Monotone: laxer targets need no more measurements.
            assert all(b <= a + 1e-12 for a, b in zip(series, series[1:]))


class TestAblationExperiments:
    def test_lowrank_quick(self):
        result = experiments.run("lowrank", quick=True)
        small = result.data["4x4 (16 elems)"]
        # The paper's setup fact: a few dims carry ~95% on 16 elements.
        assert small["mean_rank95"] < 8
        assert small["mean_top5"] > 0.85

    def test_estimator_ablation_quick(self):
        result = experiments.run("abl-estimator", quick=True)
        assert set(result.data["mean_loss_db"]) == {
            "ML (Eq. 23)",
            "LS+nuclear",
            "BackProjection",
        }

    def test_j_ablation_quick(self):
        result = experiments.run("abl-j", quick=True)
        assert "J=4" in result.data["mean_loss_db"]

    def test_mu_ablation_quick(self):
        result = experiments.run("abl-mu", quick=True)
        assert len(result.data["mean_loss_db"]) == 2

    def test_floor_ablation_quick(self):
        result = experiments.run("abl-floor", quick=True)
        assert any("literal" in name for name in result.data["mean_loss_db"])

    def test_mac_overhead_quick(self):
        result = experiments.run("mac-overhead", quick=True)
        schemes = result.data["schemes"]
        assert "Proposed" in schemes and "Random" in schemes
        for payload in schemes.values():
            assert all(v >= 0 for v in payload["net_bps_hz"])
            assert all(0 <= v <= 1 for v in payload["overhead"])

    def test_cell_search_quick(self):
        result = experiments.run("cell-search", quick=True)
        strategies = result.data["strategies"]
        assert set(strategies) == {"random RX", "scanning RX"}
        for payload in strategies.values():
            assert 0.0 <= payload["detection_rate"] <= 1.0

    def test_mc_recovery_quick(self):
        result = experiments.run("mc-recovery", quick=True)
        solvers = result.data["solvers"]
        assert set(solvers) == {"SVT", "OptSpace"}
        for errors in solvers.values():
            # Error at the densest sampling should be small.
            assert errors[-1] < 0.2
