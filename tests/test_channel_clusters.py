"""Tests for cluster statistics and scenario channel generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.upa import UniformPlanarArray
from repro.channel.clusters import (
    ClusterParams,
    PathClusterSpec,
    random_sector_direction,
    sample_cluster_specs,
    specs_to_subpaths,
)
from repro.channel.multipath import sample_nyc_channel
from repro.channel.singlepath import sample_singlepath_channel
from repro.exceptions import ValidationError
from repro.utils.geometry import Direction


class TestClusterParams:
    def test_defaults_valid(self):
        ClusterParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mean_clusters": 0.0},
            {"max_clusters": 0},
            {"subpaths_per_cluster": 0},
            {"power_decay_exponent": 0.5},
            {"power_shadowing_db": -1.0},
            {"azimuth_sine_range": (0.5, 0.1)},
            {"elevation_sine_range": (-2.0, 0.5)},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValidationError):
            ClusterParams(**kwargs)


class TestSpecSampling:
    def test_fractions_sum_to_one(self, rng):
        specs = sample_cluster_specs(rng)
        assert sum(s.power_fraction for s in specs) == pytest.approx(1.0)

    def test_cluster_count_bounds(self, rng):
        params = ClusterParams(max_clusters=3)
        for _ in range(50):
            specs = sample_cluster_specs(rng, params)
            assert 1 <= len(specs) <= 3

    def test_mean_cluster_count_plausible(self):
        """Poisson(1.9) clipped to [1, 6]: mean around 2."""
        counts = [
            len(sample_cluster_specs(np.random.default_rng(i))) for i in range(500)
        ]
        assert 1.5 < np.mean(counts) < 2.7

    def test_directions_in_sector(self, rng):
        params = ClusterParams(azimuth_sine_range=(-0.5, 0.5))
        for _ in range(50):
            d = random_sector_direction(rng, params)
            assert abs(np.sin(d.azimuth)) <= 0.5 + 1e-9

    def test_spec_validation(self):
        with pytest.raises(ValidationError):
            PathClusterSpec(
                power_fraction=1.2, tx_center=Direction(0.0), rx_center=Direction(0.0)
            )


class TestSubpathExpansion:
    def test_count(self, rng):
        params = ClusterParams(subpaths_per_cluster=5)
        specs = sample_cluster_specs(rng, params)
        subpaths = specs_to_subpaths(specs, rng, params)
        assert len(subpaths) == 5 * len(specs)

    def test_power_partition(self, rng):
        specs = sample_cluster_specs(rng)
        subpaths = specs_to_subpaths(specs, rng)
        assert sum(p.power for p in subpaths) == pytest.approx(1.0)

    def test_angular_spread_small(self, rng):
        """Subpaths stay within a few spreads of the cluster center."""
        params = ClusterParams(azimuth_spread_deg=2.0, elevation_spread_deg=1.0)
        spec = PathClusterSpec(
            power_fraction=1.0, tx_center=Direction(0.3, 0.1), rx_center=Direction(-0.2, 0.0)
        )
        subpaths = specs_to_subpaths([spec], rng, params)
        offsets = [abs(p.rx_direction.azimuth - (-0.2)) for p in subpaths]
        assert max(offsets) < np.deg2rad(2.0) * 5

    def test_empty_specs_rejected(self, rng):
        with pytest.raises(ValidationError):
            specs_to_subpaths([], rng)


class TestScenarioGenerators:
    def test_singlepath_rank_one(self, rng):
        tx, rx = UniformPlanarArray(2, 2), UniformPlanarArray(2, 4)
        channel = sample_singlepath_channel(tx, rx, rng)
        assert channel.num_subpaths == 1
        values = np.linalg.eigvalsh(channel.full_rx_covariance())
        assert np.sum(values > 1e-10 * values.max()) == 1

    def test_singlepath_snr(self, rng):
        tx, rx = UniformPlanarArray(2, 2), UniformPlanarArray(2, 2)
        channel = sample_singlepath_channel(tx, rx, rng, snr=50.0)
        assert channel.snr == 50.0

    def test_multipath_structure(self, rng):
        tx, rx = UniformPlanarArray(2, 2), UniformPlanarArray(2, 4)
        params = ClusterParams(subpaths_per_cluster=4)
        channel = sample_nyc_channel(tx, rx, rng, params=params)
        assert channel.num_subpaths % 4 == 0
        assert channel.powers.sum() == pytest.approx(1.0)

    def test_multipath_low_rank_tendency(self):
        """Clustered channels concentrate energy in few eigen-directions."""
        from repro.utils.linalg import energy_fraction

        tx, rx = UniformPlanarArray(4, 4), UniformPlanarArray(4, 4)
        fractions = []
        for seed in range(20):
            rng = np.random.default_rng(seed)
            channel = sample_nyc_channel(tx, rx, rng)
            fractions.append(energy_fraction(channel.full_rx_covariance(), 5))
        assert np.mean(fractions) > 0.85

    def test_determinism(self):
        tx, rx = UniformPlanarArray(2, 2), UniformPlanarArray(2, 2)
        a = sample_nyc_channel(tx, rx, np.random.default_rng(3))
        b = sample_nyc_channel(tx, rx, np.random.default_rng(3))
        np.testing.assert_allclose(a.powers, b.powers)
        np.testing.assert_allclose(a.rx_steering, b.rx_steering)
