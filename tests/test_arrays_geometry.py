"""Tests for array geometries (ULA / UPA)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.ula import UniformLinearArray
from repro.arrays.upa import UniformPlanarArray
from repro.exceptions import ValidationError


class TestUniformLinearArray:
    def test_element_count(self):
        assert UniformLinearArray(8).num_elements == 8
        assert len(UniformLinearArray(8)) == 8

    def test_positions_along_x(self):
        ula = UniformLinearArray(4, spacing=0.5)
        np.testing.assert_allclose(ula.positions[:, 0], [0.0, 0.5, 1.0, 1.5])
        np.testing.assert_allclose(ula.positions[:, 1:], 0.0)

    def test_custom_spacing(self):
        ula = UniformLinearArray(3, spacing=0.25)
        assert ula.spacing == 0.25
        np.testing.assert_allclose(ula.positions[:, 0], [0.0, 0.25, 0.5])

    def test_aperture(self):
        assert UniformLinearArray(5, spacing=0.5).aperture == pytest.approx(2.0)

    def test_single_element(self):
        assert UniformLinearArray(1).aperture == 0.0

    def test_grid_shape(self):
        assert UniformLinearArray(6).grid_shape == (6,)

    def test_positions_readonly(self):
        ula = UniformLinearArray(3)
        with pytest.raises(ValueError):
            ula.positions[0, 0] = 9.0

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            UniformLinearArray(0)
        with pytest.raises(ValidationError):
            UniformLinearArray(4, spacing=0.0)

    def test_repr(self):
        assert "ULA-8" in repr(UniformLinearArray(8))


class TestUniformPlanarArray:
    def test_element_count(self):
        assert UniformPlanarArray(4, 4).num_elements == 16
        assert UniformPlanarArray(2, 3).num_elements == 6

    def test_grid_shape(self):
        assert UniformPlanarArray(2, 3).grid_shape == (2, 3)

    def test_flat_index_row_major(self):
        upa = UniformPlanarArray(3, 4)
        assert upa.flat_index(0, 0) == 0
        assert upa.flat_index(0, 3) == 3
        assert upa.flat_index(1, 0) == 4
        assert upa.flat_index(2, 3) == 11

    def test_flat_index_bounds(self):
        upa = UniformPlanarArray(2, 2)
        with pytest.raises(ValidationError):
            upa.flat_index(2, 0)
        with pytest.raises(ValidationError):
            upa.flat_index(0, -1)

    def test_positions_xz_plane(self):
        upa = UniformPlanarArray(2, 2, spacing=0.5)
        np.testing.assert_allclose(upa.positions[:, 1], 0.0)  # y == 0
        # Element (row=1, col=1) sits at x=0.5, z=0.5.
        index = upa.flat_index(1, 1)
        np.testing.assert_allclose(upa.positions[index], [0.5, 0.0, 0.5])

    def test_paper_arrays(self):
        """Sec. V-A: TX 4x4, RX 8x8, lambda/2 spacing."""
        tx = UniformPlanarArray(4, 4)
        rx = UniformPlanarArray(8, 8)
        assert tx.num_elements == 16
        assert rx.num_elements == 64
        assert tx.spacing == rx.spacing == 0.5

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            UniformPlanarArray(0, 2)
        with pytest.raises(ValidationError):
            UniformPlanarArray(2, 2, spacing=-1.0)
