"""Tests for trace export: Chrome trace-event JSON and OpenMetrics."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    TraceRecorder,
    chrome_trace,
    chrome_trace_from_file,
    parse_openmetrics,
    read_trace,
    registry_from_trace,
    render_openmetrics,
    validate_chrome_trace,
    write_chrome_trace,
    write_openmetrics,
)
from repro.obs.openmetrics import metric_name


@pytest.fixture
def trace_records(tmp_path):
    path = tmp_path / "trace.jsonl"
    with TraceRecorder(path) as recorder:
        with recorder.span("sweep", kind="test"):
            recorder.event("tick", step=1)
            with recorder.span("trial", worker=1):
                pass
        recorder.increment("trials", 4)
        recorder.gauge("loss_db", 2.5)
    return read_trace(path)


class TestChromeTrace:
    def test_payload_validates(self, trace_records):
        payload = chrome_trace(trace_records)
        validate_chrome_trace(payload)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["schema"] == "repro.obs/2"

    def test_phases_present(self, trace_records):
        events = chrome_trace(trace_records)["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"X", "i", "C", "M"}

    def test_span_timestamps_are_microseconds(self, trace_records):
        spans = {
            e["name"]: e
            for e in chrome_trace(trace_records)["traceEvents"]
            if e["ph"] == "X"
        }
        source = {
            r["name"]: r for r in trace_records if r["type"] == "span"
        }
        for name, event in spans.items():
            assert event["ts"] == pytest.approx(source[name]["t0_s"] * 1e6)
            assert event["dur"] == pytest.approx(source[name]["dur_s"] * 1e6)

    def test_worker_attr_maps_to_pid_lane(self, trace_records):
        events = chrome_trace(trace_records)["traceEvents"]
        spans = {e["name"]: e for e in events if e["ph"] == "X"}
        assert spans["sweep"]["pid"] == 0  # main process lane
        assert spans["trial"]["pid"] == 2  # worker 1 -> lane 2
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "repro main" in names
        assert "repro worker 1" in names

    def test_depth_maps_to_tid(self, trace_records):
        spans = {
            e["name"]: e
            for e in chrome_trace(trace_records)["traceEvents"]
            if e["ph"] == "X"
        }
        assert spans["sweep"]["tid"] == 0
        assert spans["trial"]["tid"] == 1

    def test_counters_become_counter_events(self, trace_records):
        counters = [
            e for e in chrome_trace(trace_records)["traceEvents"] if e["ph"] == "C"
        ]
        by_name = {e["name"]: e["args"]["value"] for e in counters}
        assert by_name["trials"] == 4.0
        assert by_name["loss_db"] == 2.5

    def test_write_round_trips_through_json(self, trace_records, tmp_path):
        out = tmp_path / "trace.chrome.json"
        write_chrome_trace(trace_records, out)
        loaded = json.loads(out.read_text(encoding="utf-8"))
        validate_chrome_trace(loaded)
        assert loaded == chrome_trace(trace_records)

    def test_from_file_matches_from_records(self, trace_records, tmp_path):
        path = tmp_path / "again.jsonl"
        with TraceRecorder(path) as recorder:
            with recorder.span("solo"):
                pass
        assert chrome_trace_from_file(path) == chrome_trace(read_trace(path))

    def test_validate_rejects_bad_payloads(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "tid": 0}]}
            )
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0.0, "dur": -1}
                    ]
                }
            )


class TestOpenMetrics:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.increment("scheme.Proposed.trials", 30)
        registry.set_gauge("loss_db", 1.25)
        registry.record_duration("trial", 0.2)
        registry.record_duration("trial", 0.4)
        return registry

    def test_metric_name_sanitizes(self):
        assert metric_name("scheme.Proposed.trials") == "repro_scheme_Proposed_trials"
        assert metric_name("a-b.c", prefix="") == "a_b_c"

    def test_exposition_parses_and_terminates(self):
        text = render_openmetrics(self._registry())
        assert text.endswith("# EOF\n")
        families = parse_openmetrics(text)
        assert families["repro_scheme_Proposed_trials"]["type"] == "counter"
        assert families["repro_loss_db"]["type"] == "gauge"
        assert families["repro_trial_seconds"]["type"] == "summary"

    def test_counter_total_and_summary_samples(self):
        families = parse_openmetrics(render_openmetrics(self._registry()))
        counter = families["repro_scheme_Proposed_trials"]["samples"]
        assert counter == [("repro_scheme_Proposed_trials_total", {}, 30.0)]
        summary = {
            (name, labels.get("quantile")): value
            for name, labels, value in families["repro_trial_seconds"]["samples"]
        }
        assert summary[("repro_trial_seconds_count", None)] == 2.0
        assert summary[("repro_trial_seconds_sum", None)] == pytest.approx(0.6)
        assert summary[("repro_trial_seconds", "0.5")] == pytest.approx(0.2)
        assert summary[("repro_trial_seconds", "0.95")] == pytest.approx(0.4)

    def test_empty_registry_is_valid(self):
        assert parse_openmetrics(render_openmetrics(MetricsRegistry())) == {}

    def test_parse_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("repro_x_total 1.0\n")

    def test_parse_rejects_undeclared_sample(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_openmetrics("repro_x_total 1.0\n# EOF")

    def test_parse_rejects_non_numeric_value(self):
        text = "# TYPE repro_x counter\nrepro_x_total nope\n# EOF"
        with pytest.raises(ValueError, match="non-numeric"):
            parse_openmetrics(text)

    def test_write_openmetrics_atomic_publish(self, tmp_path):
        target = tmp_path / "metrics.prom"
        write_openmetrics(self._registry(), target)
        families = parse_openmetrics(target.read_text(encoding="utf-8"))
        assert "repro_trial_seconds" in families
        # No temp droppings left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.prom"]

    def test_registry_from_trace_rebuilds_metrics(self, trace_records):
        registry = registry_from_trace(trace_records)
        assert registry.counter("trials") == 4.0
        assert registry.gauges["loss_db"] == 2.5
        assert len(registry.timers["sweep"]) == 1
        assert len(registry.timers["trial"]) == 1

    def test_trace_recorder_publishes_openmetrics(self, tmp_path):
        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.prom"
        with TraceRecorder(trace_path, openmetrics_path=metrics_path) as recorder:
            recorder.increment("work", 3)
        families = parse_openmetrics(metrics_path.read_text(encoding="utf-8"))
        assert families["repro_work"]["samples"] == [("repro_work_total", {}, 3.0)]
