"""Tests for the profiling recorder: modes, aggregation, composition."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.obs import (
    PROFILE_MODES,
    MetricsRecorder,
    NullRecorder,
    ProfilingRecorder,
    TraceRecorder,
    read_trace,
    render_profile,
    use_recorder,
)
from repro.sim.runner import run_trial, standard_schemes


def _busywork(deadline_s: float = 0.02) -> float:
    """Pure-Python spin so both profiler modes see real stack frames."""
    total = 0.0
    end = time.perf_counter() + deadline_s
    while time.perf_counter() < end:
        total += sum(i * i for i in range(200))
    return total


class TestProfilingRecorder:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="profile mode"):
            ProfilingRecorder(mode="flamegraph")

    def test_modes_constant(self):
        assert ProfilingRecorder().mode == "cprofile"
        assert set(PROFILE_MODES) == {"cprofile", "sample"}

    def test_cprofile_captures_functions(self):
        with ProfilingRecorder() as recorder:
            with recorder.span("work"):
                _busywork()
        summary = recorder.profile_summary()
        assert summary["work"]["spans"] == 1
        assert summary["work"]["mode"] == "cprofile"
        functions = {row["function"] for row in summary["work"]["functions"]}
        assert "_busywork" in functions

    def test_repeated_spans_aggregate_under_one_name(self):
        with ProfilingRecorder() as recorder:
            for _ in range(3):
                with recorder.span("trial"):
                    _busywork(0.005)
        summary = recorder.profile_summary()
        assert list(summary) == ["trial"]
        assert summary["trial"]["spans"] == 3

    def test_nested_spans_share_top_level_profile(self):
        with ProfilingRecorder() as recorder:
            with recorder.span("outer"):
                with recorder.span("inner"):
                    _busywork(0.005)
        summary = recorder.profile_summary()
        assert "outer" in summary
        assert "inner" not in summary

    def test_hotspots_sorted_and_bounded(self):
        with ProfilingRecorder() as recorder:
            with recorder.span("work"):
                _busywork()
        rows = recorder.hotspots(top=5)
        assert 0 < len(rows) <= 5
        times = [row["tottime_s"] for row in rows]
        assert times == sorted(times, reverse=True)

    def test_sample_mode_collects_samples(self):
        recorder = ProfilingRecorder(mode="sample", sample_interval_s=0.001)
        with recorder:
            with recorder.span("work"):
                _busywork(0.08)
        summary = recorder.profile_summary()
        assert summary["work"]["mode"] == "sample"
        assert summary["work"]["samples"] > 0
        assert summary["work"]["functions"]

    def test_forwards_to_inner_recorder(self):
        inner = MetricsRecorder()
        recorder = ProfilingRecorder(inner=inner)
        assert recorder.metrics is inner.metrics
        with recorder.span("step") as span:
            span.annotate(note="ok")
        recorder.increment("hits", 2)
        recorder.gauge("level", 0.5)
        recorder.event("tick")
        assert len(inner.metrics.timers["step"]) == 1
        assert inner.metrics.counter("hits") == 2.0
        assert inner.metrics.gauges["level"] == 0.5

    def test_enabled_even_over_null_inner(self):
        recorder = ProfilingRecorder(inner=NullRecorder())
        assert recorder.enabled

    def test_composes_with_trace_recorder(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as tracer:
            with ProfilingRecorder(inner=tracer) as recorder:
                with recorder.span("work", kind="test"):
                    _busywork(0.005)
        spans = [r for r in read_trace(path) if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["work"]
        assert recorder.profile_summary()["work"]["spans"] == 1

    def test_close_idempotent_and_stops_profiling(self):
        recorder = ProfilingRecorder()
        recorder.close()
        recorder.close()
        with recorder.span("late"):
            pass
        assert recorder.profile_summary() == {}

    def test_render_profile_tables(self):
        with ProfilingRecorder() as recorder:
            with recorder.span("work"):
                _busywork()
        text = render_profile(recorder, top=3)
        assert "Profile hotspots" in text
        assert "work — 1 span(s), mode=cprofile" in text
        assert "tottime" in text

    def test_render_profile_empty(self):
        text = render_profile(ProfilingRecorder())
        assert "no top-level spans" in text


class TestProfilingDeterminism:
    def test_profiled_run_is_bit_identical(self, small_scenario, tmp_path):
        """The full diagnostics stack must not perturb seeded results."""

        def outcome_losses(recorder):
            with use_recorder(recorder):
                outcomes = run_trial(
                    small_scenario,
                    standard_schemes(measurements_per_slot=4),
                    search_rate=0.3,
                    rng=np.random.default_rng(7),
                )
            return {name: outcome.loss_db for name, outcome in outcomes.items()}

        plain = outcome_losses(NullRecorder())
        with TraceRecorder(
            tmp_path / "t.jsonl", openmetrics_path=tmp_path / "m.prom"
        ) as tracer:
            with ProfilingRecorder(inner=tracer) as profiled:
                instrumented = outcome_losses(profiled)
        assert instrumented == plain
