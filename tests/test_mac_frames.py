"""Tests for MAC frame timing."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.mac.frames import FrameConfig, training_timing


class TestFrameConfig:
    def test_defaults_valid(self):
        FrameConfig()

    def test_positive_durations_required(self):
        with pytest.raises(ConfigurationError):
            FrameConfig(measurement_duration_us=0.0)
        with pytest.raises(ConfigurationError):
            FrameConfig(coherence_time_us=-1.0)

    def test_superframe_longer_than_beacon(self):
        with pytest.raises(ConfigurationError):
            FrameConfig(beacon_duration_us=100.0, superframe_duration_us=50.0)


class TestTrainingTiming:
    def test_total_composition(self):
        config = FrameConfig(
            measurement_duration_us=2.0,
            slot_overhead_us=4.0,
            beacon_duration_us=8.0,
            feedback_duration_us=6.0,
        )
        timing = training_timing(config, num_measurements=10, num_slots=3)
        assert timing.measurement_us == 20.0
        assert timing.slot_overhead_us == 12.0
        assert timing.total_us == pytest.approx(8.0 + 20.0 + 12.0 + 6.0)

    def test_zero_measurements(self):
        timing = training_timing(FrameConfig(), 0, 0)
        assert timing.measurement_us == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            training_timing(FrameConfig(), -1, 0)

    def test_monotone_in_measurements(self):
        config = FrameConfig()
        small = training_timing(config, 10, 2).total_us
        large = training_timing(config, 100, 13).total_us
        assert large > small
