"""Tests for MUSIC direction estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.codebook import Codebook
from repro.arrays.steering import steering_vector
from repro.arrays.ula import UniformLinearArray
from repro.arrays.upa import UniformPlanarArray
from repro.estimation.music import music_beam_ranking, music_spectrum, noise_subspace
from repro.exceptions import ValidationError
from repro.utils.geometry import Direction


def _covariance_from_angles(array, angles, powers, noise=0.0):
    q = noise * np.eye(array.num_elements, dtype=complex)
    for angle, power in zip(angles, powers):
        a = steering_vector(array, Direction(angle))
        q = q + power * np.outer(a, a.conj())
    return q


class TestNoiseSubspace:
    def test_dimensions(self):
        q = np.eye(6)
        basis = noise_subspace(q, 2)
        assert basis.shape == (6, 4)

    def test_orthonormal(self, rng):
        from repro.utils.linalg import random_psd

        basis = noise_subspace(random_psd(8, 3, rng), 3)
        gram = basis.conj().T @ basis
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-10)

    def test_orthogonal_to_signal(self):
        array = UniformLinearArray(8)
        q = _covariance_from_angles(array, [0.3], [1.0])
        basis = noise_subspace(q, 1)
        a = steering_vector(array, Direction(0.3))
        assert np.linalg.norm(basis.conj().T @ a) < 1e-8

    def test_invalid_num_sources(self):
        with pytest.raises(ValidationError):
            noise_subspace(np.eye(4), 0)
        with pytest.raises(ValidationError):
            noise_subspace(np.eye(4), 4)


class TestMusicSpectrum:
    def test_peak_at_true_angle(self):
        array = UniformLinearArray(12)
        true_angle = 0.42
        q = _covariance_from_angles(array, [true_angle], [1.0], noise=0.01)
        grid = np.linspace(-1.2, 1.2, 601)
        spectrum = music_spectrum(
            q, array, [Direction(float(a)) for a in grid], num_sources=1
        )
        assert grid[int(np.argmax(spectrum))] == pytest.approx(true_angle, abs=0.01)

    def test_two_sources_resolved(self):
        array = UniformLinearArray(16)
        angles = [-0.5, 0.4]
        q = _covariance_from_angles(array, angles, [1.0, 0.8], noise=0.01)
        grid = np.linspace(-1.2, 1.2, 1201)
        spectrum = music_spectrum(
            q, array, [Direction(float(a)) for a in grid], num_sources=2
        )
        # Both true angles are local maxima well above the median level.
        for angle in angles:
            index = int(np.argmin(np.abs(grid - angle)))
            assert spectrum[index] > 20 * np.median(spectrum)


class TestBeamRanking:
    def test_true_beam_ranked_first(self):
        array = UniformPlanarArray(4, 4)
        codebook = Codebook.grid(array, n_azimuth=8, n_elevation=8)
        beam_index = 27
        d = codebook.direction(beam_index)
        a = steering_vector(array, d)
        q = np.outer(a, a.conj()) + 0.001 * np.eye(16)
        ranking = music_beam_ranking(q, codebook, num_sources=1)
        assert ranking[0] == beam_index

    def test_ranking_is_permutation(self, rng):
        from repro.utils.linalg import random_psd

        codebook = Codebook.for_array(UniformPlanarArray(3, 3))
        ranking = music_beam_ranking(random_psd(9, 2, rng), codebook, num_sources=2)
        assert sorted(ranking) == list(range(9))
