"""Tests for the timed beam-training protocol session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.random_search import RandomSearch
from repro.core.proposed import ProposedAlignment
from repro.mac.frames import FrameConfig
from repro.mac.protocol import BeamTrainingSession
from repro.measurement.measurer import MeasurementEngine


@pytest.fixture
def session(small_channel, tx_codebook, rx_codebook, rng):
    engine = MeasurementEngine(small_channel, rng, fading_blocks=2)
    return BeamTrainingSession(tx_codebook, rx_codebook, engine, FrameConfig())


class TestSession:
    def test_timing_accounts_for_measurements(self, session, rng):
        result = session.run(RandomSearch(), search_rate=0.3, rng=rng)
        config = FrameConfig()
        used = result.alignment.measurements_used
        assert result.timing.measurement_us == pytest.approx(
            used * config.measurement_duration_us
        )
        assert result.duration_us > result.timing.measurement_us

    def test_feedback_matches_alignment(self, session, rng):
        result = session.run(RandomSearch(), search_rate=0.2, rng=rng)
        assert result.feedback.pair == result.alignment.selected
        assert result.feedback.measurements_used == result.alignment.measurements_used

    def test_timeline_structure(self, session, rng):
        result = session.run(ProposedAlignment(measurements_per_slot=4), 0.3, rng)
        kinds = [entry.kind for entry in result.timeline]
        assert kinds[0] == "beacon"
        assert kinds[-1] == "feedback"
        assert kinds.count("measurement") == result.alignment.measurements_used

    def test_timeline_times_monotone(self, session, rng):
        result = session.run(RandomSearch(), 0.2, rng)
        times = [entry.time_us for entry in result.timeline]
        assert times == sorted(times)

    def test_slots_counted_for_proposed(self, session, rng):
        result = session.run(ProposedAlignment(measurements_per_slot=4), 0.3, rng)
        assert result.timing.num_slots == len(result.alignment.slots)

    def test_more_budget_longer_training(self, small_channel, tx_codebook, rx_codebook):
        durations = []
        for rate in (0.1, 0.5):
            engine = MeasurementEngine(
                small_channel, np.random.default_rng(0), fading_blocks=2
            )
            session = BeamTrainingSession(tx_codebook, rx_codebook, engine)
            result = session.run(RandomSearch(), rate, np.random.default_rng(1))
            durations.append(result.duration_us)
        assert durations[1] > durations[0]
