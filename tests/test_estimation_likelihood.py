"""Tests for the measurement likelihood (Eq. 14/18/22)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation.likelihood import (
    expected_powers,
    negative_log_likelihood,
    nll_gradient,
    nll_value_and_gradient,
)
from repro.exceptions import ValidationError
from repro.mc.operators import QuadraticFormOperator
from repro.utils.linalg import random_psd


@pytest.fixture
def setup(rng):
    n, m = 6, 5
    probes = rng.normal(size=(n, m)) + 1j * rng.normal(size=(n, m))
    probes /= np.linalg.norm(probes, axis=0)
    operator = QuadraticFormOperator(probes)
    q = random_psd(n, 2, rng)
    powers = np.abs(rng.normal(size=m)) + 0.01
    return operator, q, powers


class TestExpectedPowers:
    def test_formula(self, setup):
        operator, q, _ = setup
        noise = 0.05
        lambdas = expected_powers(q, operator, noise)
        for j in range(operator.num_measurements):
            v = operator.probes[:, j]
            expected = float(np.real(v.conj() @ q @ v)) + noise
            assert lambdas[j] == pytest.approx(expected, abs=1e-10)

    def test_custom_offsets(self, setup):
        operator, q, _ = setup
        offsets = np.full(operator.num_measurements, 0.3)
        lambdas = expected_powers(q, operator, 1.0, offsets=offsets)
        np.testing.assert_allclose(lambdas - operator.apply(q), 0.3)

    def test_positive_for_psd(self, setup):
        operator, q, _ = setup
        assert np.all(expected_powers(q, operator, 0.01) > 0)


class TestNll:
    def test_minimized_near_truth(self, rng):
        """With many measurements, NLL at the truth beats perturbations."""
        n, m = 5, 400
        probes = rng.normal(size=(n, m)) + 1j * rng.normal(size=(n, m))
        probes /= np.linalg.norm(probes, axis=0)
        operator = QuadraticFormOperator(probes)
        truth = random_psd(n, 2, rng)
        noise = 0.05
        lambdas = expected_powers(truth, operator, noise)
        powers = lambdas * rng.exponential(size=m)  # exact model
        at_truth = negative_log_likelihood(truth, operator, powers, noise)
        for _ in range(5):
            perturbed = random_psd(n, 2, rng)
            assert at_truth <= negative_log_likelihood(
                perturbed, operator, powers, noise
            )

    def test_gradient_matches_finite_difference(self, setup):
        operator, q, powers = setup
        noise = 0.05
        gradient = nll_gradient(q, operator, powers, noise)
        rng = np.random.default_rng(9)
        direction = random_psd(q.shape[0], 3, rng) - random_psd(q.shape[0], 3, rng)
        eps = 1e-6
        plus = negative_log_likelihood(q + eps * direction, operator, powers, noise)
        minus = negative_log_likelihood(q - eps * direction, operator, powers, noise)
        numerical = (plus - minus) / (2 * eps)
        analytic = float(np.real(np.vdot(gradient, direction)))
        assert analytic == pytest.approx(numerical, rel=1e-4)

    def test_value_and_gradient_consistent(self, setup):
        operator, q, powers = setup
        value, gradient = nll_value_and_gradient(q, operator, powers, 0.05)
        assert value == pytest.approx(
            negative_log_likelihood(q, operator, powers, 0.05)
        )
        np.testing.assert_allclose(
            gradient, nll_gradient(q, operator, powers, 0.05), atol=1e-12
        )

    def test_gradient_hermitian(self, setup):
        operator, q, powers = setup
        gradient = nll_gradient(q, operator, powers, 0.05)
        np.testing.assert_allclose(gradient, gradient.conj().T, atol=1e-12)


class TestValidation:
    def test_negative_powers_rejected(self, setup):
        operator, q, _ = setup
        with pytest.raises(ValidationError):
            negative_log_likelihood(q, operator, -np.ones(5), 0.05)

    def test_wrong_power_count(self, setup):
        operator, q, _ = setup
        with pytest.raises(ValidationError):
            negative_log_likelihood(q, operator, np.ones(3), 0.05)

    def test_zero_noise_rejected(self, setup):
        operator, q, powers = setup
        with pytest.raises(ValidationError):
            negative_log_likelihood(q, operator, powers, 0.0)

    def test_bad_offsets(self, setup):
        operator, q, powers = setup
        with pytest.raises(ValidationError):
            negative_log_likelihood(q, operator, powers, 1.0, offsets=np.zeros(5))
