"""Tests for TX-beam policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import RandomTxPolicy, RoundRobinTxPolicy, SnakeTxPolicy


class TestRandomTxPolicy:
    def test_avoids_used(self, tx_codebook, rng):
        policy = RandomTxPolicy()
        used = {0, 1, 2}
        for _ in range(20):
            beam = policy.next_beam(0, tx_codebook, used, rng)
            assert beam == 3

    def test_cycles_when_all_used(self, tx_codebook, rng):
        policy = RandomTxPolicy()
        used = set(range(tx_codebook.num_beams))
        beam = policy.next_beam(5, tx_codebook, used, rng)
        assert 0 <= beam < tx_codebook.num_beams

    def test_uniform_coverage(self, tx_codebook, rng):
        policy = RandomTxPolicy()
        seen = {policy.next_beam(0, tx_codebook, set(), rng) for _ in range(200)}
        assert seen == set(range(tx_codebook.num_beams))


class TestSnakeTxPolicy:
    def test_deterministic_sweep(self, tx_codebook, rng):
        policy = SnakeTxPolicy()
        order = [policy.next_beam(slot, tx_codebook, set(), rng) for slot in range(4)]
        assert order == tx_codebook.snake_order(0)

    def test_wraps(self, tx_codebook, rng):
        policy = SnakeTxPolicy()
        assert policy.next_beam(4, tx_codebook, set(), rng) == policy.next_beam(
            0, tx_codebook, set(), rng
        )

    def test_start_offset(self, tx_codebook, rng):
        policy = SnakeTxPolicy(start=2)
        assert policy.next_beam(0, tx_codebook, set(), rng) == 2


class TestRoundRobinTxPolicy:
    def test_index_order(self, tx_codebook, rng):
        policy = RoundRobinTxPolicy()
        order = [policy.next_beam(slot, tx_codebook, set(), rng) for slot in range(6)]
        assert order == [0, 1, 2, 3, 0, 1]
