"""Tests for scenario configuration and assembly."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.config import ChannelKind, ScenarioConfig
from repro.sim.scenario import Scenario


class TestScenarioConfig:
    def test_paper_defaults(self):
        config = ScenarioConfig()
        assert config.tx_shape == (4, 4)
        assert config.rx_shape == (8, 8)
        assert config.effective_tx_beam_grid == (4, 4)
        assert config.effective_rx_beam_grid == (12, 12)
        assert config.total_pairs == 16 * 144

    def test_snr_conversion(self):
        assert ScenarioConfig(snr_db=20.0).snr_linear == pytest.approx(100.0)
        assert ScenarioConfig(snr_db=0.0).snr_linear == pytest.approx(1.0)

    def test_beam_grid_override(self):
        config = ScenarioConfig(tx_beam_grid=(2, 3), rx_beam_grid=(4, 5))
        assert config.total_pairs == 6 * 20

    def test_with_channel(self):
        config = ScenarioConfig(channel=ChannelKind.SINGLEPATH, snr_db=15.0)
        other = config.with_channel(ChannelKind.MULTIPATH)
        assert other.channel is ChannelKind.MULTIPATH
        assert other.snr_db == 15.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tx_shape": (0, 4)},
            {"rx_shape": (4,)},
            {"spacing": 0.0},
            {"fading_blocks": 0},
            {"tx_beam_grid": (0, 4)},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(**kwargs)


class TestScenario:
    def test_assembly(self, small_config):
        scenario = Scenario(small_config)
        assert scenario.tx_codebook.num_beams == 4
        assert scenario.rx_codebook.num_beams == 9
        assert scenario.total_pairs == 36
        assert scenario.tx_array.num_elements == 4
        assert scenario.rx_array.num_elements == 8

    def test_sample_channel_kind(self, rng):
        single = Scenario(
            ScenarioConfig(
                channel=ChannelKind.SINGLEPATH, tx_shape=(2, 2), rx_shape=(2, 2),
                rx_beam_grid=(2, 2),
            )
        )
        channel = single.sample_channel(rng)
        assert channel.num_subpaths == 1

    def test_sample_channel_snr(self, small_scenario, rng):
        channel = small_scenario.sample_channel(rng)
        assert channel.snr == pytest.approx(100.0)

    def test_repr(self, small_scenario):
        assert "Scenario" in repr(small_scenario)
