"""Tests for the campaign scheduler: retries, faults, resume determinism."""

from __future__ import annotations

import threading
import time

import pytest

from repro.campaign import (
    FaultInjector,
    ShardStore,
    assemble_effectiveness_sweep,
    campaign_status,
    plan_effectiveness_sweep,
    run_campaign,
)
from repro.exceptions import (
    CampaignAborted,
    CampaignError,
    ConfigurationError,
    ShardExecutionError,
)
from repro.obs import MetricsRecorder, use_recorder
from repro.sim.parallel import SchemeSpec
from repro.sim.persistence import save_effectiveness_sweep
from repro.sim.runner import run_trials
from repro.sim.sweep import effectiveness_sweep

SPECS = (SchemeSpec.of("Random"), SchemeSpec.of("Proposed", measurements_per_slot=4))
RATES = (0.2, 0.4)
TRIALS = 4
SEED = 11


@pytest.fixture
def plan(small_config):
    return plan_effectiveness_sweep(
        small_config, SPECS, RATES, TRIALS, base_seed=SEED, shard_trials=2
    )


@pytest.fixture
def store(tmp_path) -> ShardStore:
    return ShardStore(tmp_path / "store")


def _direct_sweep(small_scenario):
    """The uninterrupted, in-memory reference sweep."""
    schemes = {spec.name: spec.build_factory() for spec in SPECS}
    return effectiveness_sweep(small_scenario, schemes, RATES, TRIALS, base_seed=SEED)


class TestRunCampaign:
    def test_full_run_and_skip_on_rerun(self, plan, store):
        report = run_campaign(plan, store)
        assert report.executed == len(plan.shards)
        assert report.skipped == 0
        again = run_campaign(plan, store)
        assert again.executed == 0
        assert again.skipped == len(plan.shards)

    def test_matches_direct_sweep(self, plan, store, small_scenario):
        run_campaign(plan, store)
        sweep = assemble_effectiveness_sweep(plan, store)
        assert sweep.losses == _direct_sweep(small_scenario).losses

    def test_writes_manifest_up_front(self, plan, store):
        with pytest.raises(CampaignAborted):
            run_campaign(plan, store, fault_injector=FaultInjector(abort_after=1))
        assert plan.digest in store.load_manifests()

    def test_assemble_incomplete_raises(self, plan, store):
        with pytest.raises(CampaignError, match="incomplete"):
            assemble_effectiveness_sweep(plan, store)

    def test_injected_crash_is_retried(self, plan, store):
        injector = FaultInjector(crash_shards={0: 2})
        recorder = MetricsRecorder()
        with use_recorder(recorder):
            report = run_campaign(plan, store, retries=2, fault_injector=injector)
        assert report.retries == 2
        assert report.executed == len(plan.shards)
        assert recorder.metrics.counter("campaign.retries") == 2.0
        assert recorder.metrics.counter("campaign.shards_executed") == float(
            len(plan.shards)
        )

    def test_exhausted_retries_fail_but_campaign_continues(self, plan, store):
        injector = FaultInjector(crash_shards={0: 10})
        with pytest.raises(ShardExecutionError, match="1 shard"):
            run_campaign(plan, store, retries=1, fault_injector=injector)
        status = campaign_status(plan, store)
        assert status.done == len(plan.shards) - 1  # the rest still completed
        assert status.pending == 1
        # no injector on resume: the failed shard completes
        run_campaign(plan, store)
        assert campaign_status(plan, store).complete

    def test_validation(self, plan, store):
        with pytest.raises(ConfigurationError):
            run_campaign(plan, store, retries=-1)
        with pytest.raises(ConfigurationError):
            run_campaign(plan, store, batch_trials=0)


class TestKillAndResumeDeterminism:
    @pytest.mark.parametrize("batch_trials", [None, 8])
    def test_resumed_output_byte_identical(
        self, plan, tmp_path, small_scenario, batch_trials
    ):
        fresh_store = ShardStore(tmp_path / "fresh")
        run_campaign(plan, fresh_store, batch_trials=batch_trials)
        fresh_path = tmp_path / "fresh.json"
        save_effectiveness_sweep(
            assemble_effectiveness_sweep(plan, fresh_store), fresh_path
        )

        # Kill the campaign partway through, then resume it.
        resumed_store = ShardStore(tmp_path / "resumed")
        with pytest.raises(CampaignAborted):
            run_campaign(
                plan,
                resumed_store,
                batch_trials=batch_trials,
                fault_injector=FaultInjector(abort_after=3),
            )
        mid = campaign_status(plan, resumed_store)
        assert mid.done == 3
        assert mid.pending == len(plan.shards) - 3
        run_campaign(plan, resumed_store, batch_trials=batch_trials)
        resumed_path = tmp_path / "resumed.json"
        save_effectiveness_sweep(
            assemble_effectiveness_sweep(plan, resumed_store), resumed_path
        )

        assert resumed_path.read_bytes() == fresh_path.read_bytes()
        # ... and both equal the uninterrupted in-memory sweep.
        direct_path = tmp_path / "direct.json"
        save_effectiveness_sweep(_direct_sweep(small_scenario), direct_path)
        assert fresh_path.read_bytes() == direct_path.read_bytes()

    def test_corrupt_shard_detected_and_repaired_on_resume(
        self, plan, store, small_scenario
    ):
        injector = FaultInjector(corrupt_shards=[1])
        run_campaign(plan, store, fault_injector=injector)
        status = campaign_status(plan, store)
        assert status.failed == 1
        assert status.done == len(plan.shards) - 1
        with pytest.raises(CampaignError):
            assemble_effectiveness_sweep(plan, store)
        run_campaign(plan, store)  # resume re-runs the corrupt shard
        assert campaign_status(plan, store).complete
        sweep = assemble_effectiveness_sweep(plan, store)
        assert sweep.losses == _direct_sweep(small_scenario).losses


class TestPooledExecution:
    def test_pooled_matches_serial(self, plan, tmp_path):
        serial_store = ShardStore(tmp_path / "serial")
        run_campaign(plan, serial_store)
        pooled_store = ShardStore(tmp_path / "pooled")
        run_campaign(plan, pooled_store, max_workers=2)
        serial = assemble_effectiveness_sweep(plan, serial_store)
        pooled = assemble_effectiveness_sweep(plan, pooled_store)
        assert pooled.losses == serial.losses


class TestTrialGeneratorContract:
    def test_shard_trials_reuse_global_indices(self, small_config, small_scenario):
        """A shard over trials [2, 4) reproduces run_trials' trials 2 and 3."""
        plan = plan_effectiveness_sweep(
            small_config, SPECS, (0.3,), 4, base_seed=5, shard_trials=2
        )
        schemes = {spec.name: spec.build_factory() for spec in SPECS}
        reference = run_trials(small_scenario, schemes, 0.3, 4, base_seed=5)
        from repro.campaign.scheduler import _shard_losses
        from repro.sim.parallel import _run_trial_batch

        tail_shard = plan.shards_for_rate(0.3)[1]
        outcomes, _ = _run_trial_batch(
            small_config,
            tail_shard.schemes,
            0.3,
            5,
            tail_shard.trial_indices,
            False,
            None,
        )
        losses = _shard_losses(outcomes, tail_shard)
        for name in ("Random", "Proposed"):
            assert losses[name] == [
                reference[2][name].loss_db,
                reference[3][name].loss_db,
            ]


class TestLeaseIntegration:
    """run_campaign participates in the same claim protocol as workers."""

    def test_solo_run_leaves_no_claims_behind(self, plan, store):
        report = run_campaign(plan, store)
        assert report.deferred == 0
        assert store.read_claims(plan.digest) == {}

    def test_foreign_live_lease_defers_then_absorbs(self, plan, store):
        from repro.campaign import LeaseManager
        from repro.campaign.worker import execute_shard_in_process
        from repro.obs import get_recorder

        contested = plan.shards[0]
        foreign = LeaseManager(store, plan.digest, owner="other-host")
        assert foreign.acquire(contested.digest)
        losses, _ = execute_shard_in_process(
            contested, None, None, None, get_recorder(), False
        )

        def publish_later() -> None:
            # Wait until the scheduler has visibly started on the rest of
            # the plan, then complete the contested shard "remotely".
            deadline = time.time() + 30.0
            while time.time() < deadline:
                beats = store.read_heartbeats(plan.digest)
                if any(b.get("status") == "done" for b in beats.values()):
                    break
                time.sleep(0.01)
            store.put(contested, losses)
            foreign.release(contested.digest)

        thread = threading.Thread(target=publish_later)
        thread.start()
        try:
            report = run_campaign(plan, store)
        finally:
            thread.join()
        assert report.deferred == 1
        assert report.executed == len(plan.shards) - 1
        assert report.skipped == 1
        assert campaign_status(plan, store).complete

    def test_expired_foreign_lease_is_taken_over(self, plan, store):
        import time as _time

        from repro.campaign import LeaseRecord
        from repro.utils.serialization import dump

        contested = plan.shards[0]
        now = _time.time()
        ghost = LeaseRecord(
            plan=plan.digest,
            shard=contested.digest,
            owner="ghost",
            token="otherhost:1:dead",
            pid=1,
            host="not-this-host",
            acquired_unix_s=now - 500.0,
            renewed_unix_s=now - 400.0,
            ttl_s=30.0,
        )
        path = store.claim_path(plan.digest, contested.digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        dump(ghost.to_payload(), path)

        recorder = MetricsRecorder()
        with use_recorder(recorder):
            report = run_campaign(plan, store)
        assert report.executed == len(plan.shards)
        assert recorder.metrics.counter("campaign.lease_takeovers") == 1.0
        assert store.read_claims(plan.digest) == {}
        assert campaign_status(plan, store).complete


class TestDeterministicBackoffJitter:
    """Retry backoff is a pure function of (shard digest, attempt)."""

    def test_delay_is_reproducible(self):
        from repro.campaign import backoff_delay

        plan_digests = [f"d{i}" for i in range(8)]
        first = [backoff_delay(0.2, 2, digest) for digest in plan_digests]
        second = [backoff_delay(0.2, 2, digest) for digest in plan_digests]
        assert first == second

    def test_delay_varies_across_shards_within_bounds(self):
        from repro.campaign import backoff_delay

        delays = [backoff_delay(0.2, 1, f"d{i}") for i in range(8)]
        assert len(set(delays)) == len(delays)
        assert all(0.1 <= delay < 0.3 for delay in delays)  # [0.5, 1.5) x base

    def test_zero_backoff_stays_zero(self):
        from repro.campaign import backoff_delay

        assert backoff_delay(0.0, 5, "digest") == 0.0
