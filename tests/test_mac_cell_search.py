"""Tests for the directional cell-search simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mac.cell_search import CellSearchConfig, simulate_cell_search


class TestConfig:
    def test_defaults(self):
        CellSearchConfig()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CellSearchConfig(sync_period_us=0.0)
        with pytest.raises(ConfigurationError):
            CellSearchConfig(detection_threshold=0.0)
        with pytest.raises(ConfigurationError):
            CellSearchConfig(max_bursts=0)


class TestSimulation:
    def test_detects_strong_channel(self, small_channel, tx_codebook, rx_codebook, rng):
        config = CellSearchConfig(detection_threshold=0.01, max_bursts=2000)
        outcome = simulate_cell_search(
            small_channel, tx_codebook, rx_codebook, rng, config, fading_blocks=4
        )
        assert outcome.detected
        assert outcome.detected_pair is not None
        assert outcome.detected_power >= config.detection_threshold

    def test_latency_is_burst_grid(self, small_channel, tx_codebook, rx_codebook, rng):
        config = CellSearchConfig(sync_period_us=25.0, detection_threshold=0.01)
        outcome = simulate_cell_search(
            small_channel, tx_codebook, rx_codebook, rng, config
        )
        assert outcome.latency_us == pytest.approx(outcome.bursts_used * 25.0)

    def test_gives_up_on_impossible_threshold(
        self, small_channel, tx_codebook, rx_codebook, rng
    ):
        config = CellSearchConfig(detection_threshold=1e9, max_bursts=30)
        outcome = simulate_cell_search(
            small_channel, tx_codebook, rx_codebook, rng, config
        )
        assert not outcome.detected
        assert outcome.bursts_used == 30

    def test_rx_scan_mode(self, small_channel, tx_codebook, rx_codebook, rng):
        config = CellSearchConfig(detection_threshold=0.01, rx_scan=True)
        outcome = simulate_cell_search(
            small_channel, tx_codebook, rx_codebook, rng, config
        )
        assert outcome.bursts_used >= 1

    def test_deterministic_given_rng(self, small_channel, tx_codebook, rx_codebook):
        outcomes = [
            simulate_cell_search(
                small_channel,
                tx_codebook,
                rx_codebook,
                np.random.default_rng(4),
                CellSearchConfig(detection_threshold=0.02),
            )
            for _ in range(2)
        ]
        assert outcomes[0].bursts_used == outcomes[1].bursts_used
        assert outcomes[0].detected_pair == outcomes[1].detected_pair
