"""Tests for the marginal-UCB baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ucb import UcbSearch
from repro.core.base import AlignmentContext
from repro.exceptions import ValidationError
from repro.measurement.budget import MeasurementBudget
from repro.measurement.measurer import MeasurementEngine
from repro.sim.metrics import loss_from_matrix_db


def _context(small_channel, tx_codebook, rx_codebook, rng, limit):
    engine = MeasurementEngine(small_channel, rng, fading_blocks=4)
    budget = MeasurementBudget(
        total_pairs=tx_codebook.num_beams * rx_codebook.num_beams, limit=limit
    )
    return AlignmentContext(tx_codebook, rx_codebook, engine, budget)


class TestUcbSearch:
    def test_invalid_constant(self):
        with pytest.raises(ValidationError):
            UcbSearch(exploration_constant=-1.0)

    def test_spends_budget(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 30)
        result = UcbSearch().align(context, rng)
        assert result.measurements_used == 30
        assert result.algorithm == "UCB"

    def test_distinct_pairs(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 40)
        result = UcbSearch().align(context, rng)
        pairs = [m.pair for m in result.trace]
        assert len(set(pairs)) == 40

    def test_full_budget(self, small_channel, tx_codebook, rx_codebook, rng):
        total = tx_codebook.num_beams * rx_codebook.num_beams
        context = _context(small_channel, tx_codebook, rx_codebook, rng, total)
        result = UcbSearch().align(context, rng)
        assert result.measurements_used == total

    def test_exploits_strong_marginals(self, small_channel, tx_codebook, rx_codebook):
        """With a generous budget, UCB concentrates measurements on the
        dominant TX beam more than uniform sampling would."""
        context = _context(
            small_channel, tx_codebook, rx_codebook, np.random.default_rng(0), 40
        )
        result = UcbSearch(exploration_constant=0.05).align(
            context, np.random.default_rng(1)
        )
        snr = small_channel.mean_snr_matrix(tx_codebook, rx_codebook)
        best_tx = int(np.unravel_index(np.argmax(snr), snr.shape)[0])
        counts = {}
        for m in result.trace:
            counts[m.pair.tx_index] = counts.get(m.pair.tx_index, 0) + 1
        assert counts.get(best_tx, 0) >= 40 / tx_codebook.num_beams

    def test_quality_reasonable(self, small_channel, tx_codebook, rx_codebook, rng):
        snr = small_channel.mean_snr_matrix(tx_codebook, rx_codebook)
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 50)
        result = UcbSearch().align(context, rng)
        assert loss_from_matrix_db(snr, result.selected) < 8.0
