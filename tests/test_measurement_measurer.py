"""Tests for the measurement engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.measurement.measurer import Measurement, MeasurementEngine
from repro.types import BeamPair


class TestMeasurement:
    def test_negative_power_rejected(self):
        with pytest.raises(ValidationError):
            Measurement(power=-1.0, z=0j)

    def test_fields(self):
        m = Measurement(power=1.0, z=1 + 0j, pair=BeamPair(0, 1), slot=2)
        assert m.pair == BeamPair(0, 1)
        assert m.slot == 2


class TestMeasurementEngine:
    def test_counter(self, engine, tx_codebook, rx_codebook):
        engine.measure_pair(tx_codebook, rx_codebook, BeamPair(0, 0))
        engine.measure_pair(tx_codebook, rx_codebook, BeamPair(1, 2))
        assert engine.num_measurements == 2

    def test_noise_variance(self, engine):
        assert engine.noise_variance == pytest.approx(0.01)  # gamma = 100

    def test_rejects_non_unit_beams(self, engine):
        with pytest.raises(ValidationError):
            engine.measure_vectors(np.ones(4, dtype=complex), np.ones(8, dtype=complex))

    def test_invalid_fading_blocks(self, small_channel, rng):
        with pytest.raises(ValidationError):
            MeasurementEngine(small_channel, rng, fading_blocks=0)

    def test_power_statistic_unbiased(self, small_channel, rng, tx_codebook, rx_codebook):
        """E[w] == lambda == v^H (Q_u + I/gamma) v (Eq. 14)."""
        engine = MeasurementEngine(small_channel, rng, fading_blocks=1)
        pair = BeamPair(0, 3)
        expected = engine.expected_power(tx_codebook.beam(0), rx_codebook.beam(3))
        powers = [
            engine.measure_pair(tx_codebook, rx_codebook, pair).power
            for _ in range(6000)
        ]
        assert np.mean(powers) == pytest.approx(expected, rel=0.06)

    def test_fading_blocks_reduce_variance(self, small_channel, tx_codebook, rx_codebook):
        pair = BeamPair(0, 0)
        single = MeasurementEngine(small_channel, np.random.default_rng(0), fading_blocks=1)
        many = MeasurementEngine(small_channel, np.random.default_rng(1), fading_blocks=16)
        var_single = np.var(
            [single.measure_pair(tx_codebook, rx_codebook, pair).power for _ in range(2000)]
        )
        var_many = np.var(
            [many.measure_pair(tx_codebook, rx_codebook, pair).power for _ in range(2000)]
        )
        assert var_many < var_single / 4

    def test_mean_invariant_to_fading_blocks(self, small_channel, tx_codebook, rx_codebook):
        """Averaging blocks must not bias the statistic."""
        pair = BeamPair(1, 4)
        one = MeasurementEngine(small_channel, np.random.default_rng(2), fading_blocks=1)
        eight = MeasurementEngine(small_channel, np.random.default_rng(3), fading_blocks=8)
        mean_one = np.mean(
            [one.measure_pair(tx_codebook, rx_codebook, pair).power for _ in range(4000)]
        )
        mean_eight = np.mean(
            [eight.measure_pair(tx_codebook, rx_codebook, pair).power for _ in range(1000)]
        )
        assert mean_eight == pytest.approx(mean_one, rel=0.1)

    def test_measure_pair_tags_identity(self, engine, tx_codebook, rx_codebook):
        m = engine.measure_pair(tx_codebook, rx_codebook, BeamPair(2, 7), slot=3)
        assert m.pair == BeamPair(2, 7)
        assert m.slot == 3

    def test_expected_power_includes_noise(self, engine, tx_codebook, rx_codebook):
        value = engine.expected_power(tx_codebook.beam(0), rx_codebook.beam(0))
        assert value >= engine.noise_variance
