"""Tests for the drifting-channel process."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.upa import UniformPlanarArray
from repro.channel.drift import DriftingChannelProcess
from repro.exceptions import ValidationError


@pytest.fixture
def arrays():
    return UniformPlanarArray(2, 2), UniformPlanarArray(2, 4)


def _covariance_correlation(a, b) -> float:
    qa = a.full_rx_covariance()
    qb = b.full_rx_covariance()
    return float(
        np.abs(np.vdot(qa, qb)) / (np.linalg.norm(qa) * np.linalg.norm(qb))
    )


class TestDriftingChannelProcess:
    def test_invalid_drift(self, arrays, rng):
        with pytest.raises(ValidationError):
            DriftingChannelProcess(*arrays, rng, drift_deg_per_step=-1.0)

    def test_zero_drift_freezes_geometry(self, arrays, rng):
        process = DriftingChannelProcess(*arrays, rng, drift_deg_per_step=0.0)
        first = process.step()
        second = process.step()
        np.testing.assert_allclose(
            first.full_rx_covariance(), second.full_rx_covariance(), atol=1e-12
        )

    def test_step_counter(self, arrays, rng):
        process = DriftingChannelProcess(*arrays, rng)
        assert process.steps_taken == 0
        process.step()
        process.step()
        assert process.steps_taken == 2

    def test_power_conserved(self, arrays, rng):
        process = DriftingChannelProcess(*arrays, rng, drift_deg_per_step=3.0)
        for _ in range(5):
            channel = process.step()
            assert channel.powers.sum() == pytest.approx(1.0)

    def test_small_drift_keeps_covariance_correlated(self, arrays, rng):
        process = DriftingChannelProcess(*arrays, rng, drift_deg_per_step=0.5)
        start = process.current_channel()
        process.step()
        after = process.current_channel()
        assert _covariance_correlation(start, after) > 0.9

    def test_larger_drift_decorrelates_faster(self, arrays):
        correlations = {}
        for drift in (0.5, 10.0):
            process = DriftingChannelProcess(
                *arrays, np.random.default_rng(7), drift_deg_per_step=drift
            )
            start = process.current_channel()
            for _ in range(10):
                process.step()
            correlations[drift] = _covariance_correlation(
                start, process.current_channel()
            )
        assert correlations[10.0] < correlations[0.5]

    def test_snr_propagates(self, arrays, rng):
        process = DriftingChannelProcess(*arrays, rng, snr=42.0)
        assert process.step().snr == 42.0

    def test_cluster_count_fixed(self, arrays, rng):
        process = DriftingChannelProcess(*arrays, rng)
        count = process.num_clusters
        for _ in range(4):
            process.step()
        assert process.num_clusters == count
