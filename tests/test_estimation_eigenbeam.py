"""Tests for eigen-beamforming (Eq. 26)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.codebook import Codebook
from repro.arrays.upa import UniformPlanarArray
from repro.estimation.eigenbeam import (
    best_codebook_beam,
    eigen_beamformer,
    quantization_loss_db,
    select_probe_beams,
)
from repro.utils.linalg import random_psd


@pytest.fixture
def codebook() -> Codebook:
    return Codebook.grid(UniformPlanarArray(2, 4), n_azimuth=6, n_elevation=3)


class TestBestBeam:
    def test_matches_codebook_argmax(self, codebook, rng):
        q = random_psd(8, 2, rng)
        assert best_codebook_beam(codebook, q) == codebook.best_beam(q)

    def test_exclusion(self, codebook, rng):
        q = random_psd(8, 2, rng)
        best = best_codebook_beam(codebook, q)
        assert best_codebook_beam(codebook, q, exclude={best}) != best


class TestSelectProbeBeams:
    def test_count_and_order(self, codebook, rng):
        q = random_psd(8, 3, rng)
        beams = select_probe_beams(codebook, q, 4)
        gains = codebook.gains(q)
        assert len(beams) == 4
        assert all(gains[a] >= gains[b] - 1e-12 for a, b in zip(beams, beams[1:]))


class TestEigenBeamformer:
    def test_unit_norm(self, rng):
        assert np.linalg.norm(eigen_beamformer(random_psd(8, 2, rng))) == pytest.approx(1.0)

    def test_maximizes_quadratic_form(self, rng):
        q = random_psd(8, 2, rng)
        vec = eigen_beamformer(q)
        value = float(np.real(vec.conj() @ q @ vec))
        for _ in range(10):
            other = rng.normal(size=8) + 1j * rng.normal(size=8)
            other /= np.linalg.norm(other)
            assert value >= float(np.real(other.conj() @ q @ other)) - 1e-9


class TestQuantizationLoss:
    def test_nonnegative(self, codebook, rng):
        for _ in range(5):
            q = random_psd(8, 2, rng)
            assert quantization_loss_db(codebook, q) >= -1e-9

    def test_zero_when_covariance_is_beam(self, codebook):
        """Covariance aligned with a codebook beam has ~no quantization loss."""
        v = codebook.beam(7)
        q = np.outer(v, v.conj())
        assert quantization_loss_db(codebook, q) == pytest.approx(0.0, abs=1e-9)

    def test_denser_codebook_reduces_loss(self, rng):
        array = UniformPlanarArray(2, 4)
        coarse = Codebook.grid(array, n_azimuth=4, n_elevation=2)
        dense = Codebook.grid(array, n_azimuth=12, n_elevation=6)
        losses_coarse, losses_dense = [], []
        for _ in range(10):
            q = random_psd(8, 1, rng)
            losses_coarse.append(quantization_loss_db(coarse, q))
            losses_dense.append(quantization_loss_db(dense, q))
        assert np.mean(losses_dense) <= np.mean(losses_coarse)
