"""Integration tests: instrumentation across solvers, runner, and sweeps.

The load-bearing guarantee is the determinism regression: recorders only
observe, so instrumented and uninstrumented runs of the same seeds must
produce bit-identical outcomes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation.ml_covariance import MlCovarianceEstimator
from repro.mc.alm import rpca_ialm
from repro.obs import (
    MetricsRecorder,
    TraceRecorder,
    read_trace,
    use_recorder,
)
from repro.sim.parallel import SchemeSpec, run_trials_parallel
from repro.sim.runner import run_trials, standard_schemes
from repro.sim.sweep import effectiveness_sweep


def _outcome_fingerprint(trials):
    """Everything that should be invariant under instrumentation."""
    return [
        (
            name,
            outcome.loss_db,
            outcome.result.selected,
            outcome.result.measurements_used,
            outcome.result.selected_power,
        )
        for trial in trials
        for name, outcome in trial.items()
    ]


class TestDeterminism:
    def test_instrumented_run_trials_bit_identical(self, small_scenario, tmp_path):
        schemes = standard_schemes(measurements_per_slot=4)
        baseline = run_trials(small_scenario, schemes, 0.3, 3, base_seed=11)
        with TraceRecorder(tmp_path / "t.jsonl") as recorder, use_recorder(recorder):
            traced = run_trials(
                small_scenario,
                standard_schemes(measurements_per_slot=4),
                0.3,
                3,
                base_seed=11,
            )
        assert _outcome_fingerprint(baseline) == _outcome_fingerprint(traced)

    def test_progress_callback_does_not_perturb(self, small_scenario):
        schemes = standard_schemes(measurements_per_slot=4)
        baseline = run_trials(small_scenario, schemes, 0.3, 3, base_seed=11)
        events = []
        with_progress = run_trials(
            small_scenario,
            standard_schemes(measurements_per_slot=4),
            0.3,
            3,
            base_seed=11,
            progress=events.append,
        )
        assert _outcome_fingerprint(baseline) == _outcome_fingerprint(with_progress)
        assert events[-1].done == 3


class TestRunnerTracing:
    def test_trace_contains_trial_and_solver_records(self, small_scenario, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(path) as recorder, use_recorder(recorder):
            run_trials(
                small_scenario,
                standard_schemes(measurements_per_slot=4),
                0.3,
                2,
                base_seed=0,
            )
        records = read_trace(path)
        span_names = [r["name"] for r in records if r["type"] == "span"]
        assert span_names.count("trial") == 2
        assert "run_trials" in span_names
        assert any(name.startswith("scheme.") for name in span_names)
        assert any(name == "solver.ml_covariance" for name in span_names)
        event_names = {r["name"] for r in records if r["type"] == "event"}
        assert "solver.ml_covariance.iteration" in event_names
        # every span carries timing data
        assert all(r["dur_s"] >= 0.0 for r in records if r["type"] == "span")

    def test_scheme_counters_accumulate(self, small_scenario):
        recorder = MetricsRecorder()
        with use_recorder(recorder):
            trials = run_trials(
                small_scenario,
                standard_schemes(measurements_per_slot=4),
                0.3,
                2,
                base_seed=0,
            )
        expected = sum(t["Proposed"].result.measurements_used for t in trials)
        assert recorder.metrics.counter("scheme.Proposed.measurements") == expected
        assert recorder.metrics.counter("scheme.Proposed.trials") == 2


class TestSweepInstrumentation:
    def test_sweep_progress_covers_grid(self, small_scenario):
        events = []
        effectiveness_sweep(
            small_scenario,
            standard_schemes(measurements_per_slot=4),
            [0.2, 0.3],
            2,
            base_seed=0,
            progress=events.append,
        )
        assert events[-1].done == 4
        assert events[-1].total == 4

    def test_sweep_spans_per_rate(self, small_scenario, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(path) as recorder, use_recorder(recorder):
            effectiveness_sweep(
                small_scenario,
                standard_schemes(measurements_per_slot=4),
                [0.2, 0.3],
                1,
                base_seed=0,
            )
        span_names = [r["name"] for r in read_trace(path) if r["type"] == "span"]
        assert span_names.count("sweep.rate") == 2
        assert "effectiveness_sweep" in span_names


class TestParallelMetricsMerge:
    SPECS = (
        SchemeSpec.of("Random"),
        SchemeSpec.of("Proposed", measurements_per_slot=4),
    )

    def test_worker_metrics_merge_across_processes(self, small_config):
        recorder = MetricsRecorder()
        with use_recorder(recorder):
            trials = run_trials_parallel(
                small_config, self.SPECS, 0.3, 3, base_seed=5, max_workers=2,
                batch_size=1,
            )
        expected = sum(t["Proposed"].measurements_used for t in trials)
        metrics = recorder.metrics
        assert metrics.counter("scheme.Proposed.measurements") == expected
        assert metrics.counter("scheme.Proposed.trials") == 3
        # worker-side solver telemetry survived the process boundary
        assert metrics.counter("estimator.ml.solves") > 0
        # per-batch merge events were recorded in the parent
        assert metrics.counter("parallel.batch_merged") == 3

    def test_parallel_matches_serial_with_recorder(self, small_config):
        plain = run_trials_parallel(
            small_config, self.SPECS, 0.3, 2, base_seed=5, max_workers=1
        )
        with use_recorder(MetricsRecorder()):
            recorded = run_trials_parallel(
                small_config, self.SPECS, 0.3, 2, base_seed=5, max_workers=2
            )
        assert plain == recorded

    def test_parallel_progress(self, small_config):
        events = []
        run_trials_parallel(
            small_config,
            self.SPECS,
            0.3,
            2,
            base_seed=5,
            max_workers=1,
            progress=events.append,
        )
        assert events[-1].done == 2


class TestSolverDiagnostics:
    def test_estimator_keeps_last_result(self, rng):
        estimator = MlCovarianceEstimator(max_iterations=10)
        probes = rng.standard_normal((8, 3)) + 1j * rng.standard_normal((8, 3))
        powers = np.abs(rng.standard_normal(3)) + 0.05
        assert estimator.last_result is None
        estimator.estimate(probes, powers, 0.01)
        assert estimator.last_result is not None
        assert estimator.last_result.iterations >= 1
        assert estimator.num_solves == 1
        assert estimator.total_iterations == estimator.last_result.iterations
        estimator.estimate(probes, powers, 0.01)
        assert estimator.num_solves == 2
        assert estimator.num_converged <= 2

    def test_rpca_residual_history(self, rng):
        low_rank = rng.standard_normal((12, 12))
        result = rpca_ialm(low_rank, max_iterations=50, tolerance=1e-6)
        assert len(result.residual_history) == result.iterations
        assert result.residual_history[-1] == pytest.approx(result.residual)

    def test_rpca_iteration_events(self, rng, tmp_path):
        path = tmp_path / "t.jsonl"
        observed = rng.standard_normal((10, 10))
        with TraceRecorder(path) as recorder, use_recorder(recorder):
            rpca_ialm(observed, max_iterations=20)
        records = read_trace(path)
        events = [r for r in records if r["type"] == "event"]
        assert events, "no iteration events recorded"
        assert all(r["name"] == "solver.rpca_ialm.iteration" for r in events)
        span = next(r for r in records if r["type"] == "span")
        assert span["name"] == "solver.rpca_ialm"
        assert "iterations" in span["attrs"]
        assert "converged" in span["attrs"]

    def test_proposed_slots_carry_convergence(self, small_scenario):
        trials = run_trials(
            small_scenario, standard_schemes(measurements_per_slot=4), 0.3, 1, base_seed=3
        )
        slots = trials[0]["Proposed"].result.slots
        flagged = [s for s in slots if s.estimator_converged is not None]
        assert flagged, "no slot recorded estimator convergence"
