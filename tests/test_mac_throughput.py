"""Tests for throughput/overhead accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mac.frames import FrameConfig
from repro.mac.throughput import effective_capacity, training_overhead_fraction


class TestOverheadFraction:
    def test_zero_measurements_minimum_overhead(self):
        config = FrameConfig()
        fraction = training_overhead_fraction(config, 0, 0)
        expected = (config.beacon_duration_us + config.feedback_duration_us) / (
            config.coherence_time_us
        )
        assert fraction == pytest.approx(expected)

    def test_monotone_in_measurements(self):
        config = FrameConfig()
        small = training_overhead_fraction(config, 10, 2)
        large = training_overhead_fraction(config, 1000, 130)
        assert large > small

    def test_clipped_at_one(self):
        config = FrameConfig(coherence_time_us=10.0)
        assert training_overhead_fraction(config, 10_000, 1000) == 1.0


class TestEffectiveCapacity:
    def test_shannon_gross(self):
        cap = effective_capacity(snr_linear=1.0, overhead_fraction=0.0)
        assert cap.gross_bps_hz == pytest.approx(1.0)
        assert cap.net_bps_hz == pytest.approx(1.0)

    def test_overhead_discount(self):
        cap = effective_capacity(snr_linear=3.0, overhead_fraction=0.25)
        assert cap.net_bps_hz == pytest.approx(0.75 * np.log2(4.0))

    def test_full_overhead_zero_net(self):
        assert effective_capacity(100.0, 1.0).net_bps_hz == 0.0

    def test_zero_snr(self):
        assert effective_capacity(0.0, 0.0).gross_bps_hz == 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            effective_capacity(-1.0, 0.0)
        with pytest.raises(ValidationError):
            effective_capacity(1.0, 1.5)
