"""Tests for FIFO airtime scheduling over MAC frames."""

from __future__ import annotations

import math

import pytest

from repro.cell.arrivals import Arrival, ArrivalSchedule
from repro.cell.config import CellConfig
from repro.cell.scheduler import build_schedule, schedule_airtime
from repro.exceptions import ConfigurationError
from repro.mac.frames import FrameConfig
from repro.sim.config import ScenarioConfig


def arrivals_at(*times_us: float) -> ArrivalSchedule:
    rows = tuple(
        Arrival(ue_id=index, time_us=time_us) for index, time_us in enumerate(times_us)
    )
    return ArrivalSchedule(arrivals=rows, admitted=len(rows), rejected=0)


FRAME = FrameConfig()  # 2000us superframe, 2us dwell, 8us beacon, 6us feedback


class TestSingleUE:
    def test_fits_one_frame(self):
        schedule = schedule_airtime(arrivals_at(100.0), 10, FRAME, 64)
        entry = schedule.entries[0]
        assert entry.frames_used == 1
        assert entry.first_frame == 1  # eligible at the next frame boundary
        assert entry.first_grant_us == 2000.0 + FRAME.beacon_duration_us
        assert entry.completion_us == entry.first_grant_us + 10 * 2.0 + 6.0
        assert entry.queue_wait_us == entry.first_grant_us - 100.0
        assert entry.peak_concurrency == 0

    def test_spans_frames_when_demand_exceeds_budget(self):
        schedule = schedule_airtime(arrivals_at(100.0), 150, FRAME, 64)
        entry = schedule.entries[0]
        assert entry.frames_used == math.ceil(150 / 64)
        assert entry.last_frame == entry.first_frame + entry.frames_used - 1
        # last frame grants the 22 leftover measurements
        last_start = entry.last_frame * FRAME.superframe_duration_us
        assert entry.completion_us == (
            last_start + FRAME.beacon_duration_us + 22 * 2.0 + 6.0
        )

    def test_boundary_arrival_waits_full_frame(self):
        schedule = schedule_airtime(arrivals_at(2000.5), 4, FRAME, 64)
        assert schedule.entries[0].first_frame == 2


class TestContention:
    def test_fifo_order(self):
        schedule = schedule_airtime(arrivals_at(10.0, 20.0, 30.0), 30, FRAME, 64)
        a, b, c = schedule.entries
        assert a.first_grant_us < b.first_grant_us < c.first_grant_us
        # Frame 1 serves a (30), b (30), and the first 4 of c; c's tail
        # spills into frame 2.
        assert a.first_frame == b.first_frame == c.first_frame == 1
        assert a.frames_used == b.frames_used == 1
        assert c.frames_used == 2
        assert c.last_frame == 2
        assert c.completion_us > b.completion_us

    def test_capacity_respected(self):
        schedule = schedule_airtime(
            arrivals_at(*(float(i) for i in range(1, 9))), 20, FRAME, 64
        )
        assert all(load <= 64 for load in schedule.frame_load)
        assert sum(schedule.frame_load) == 8 * 20

    def test_queue_wait_grows_down_the_queue(self):
        schedule = schedule_airtime(
            arrivals_at(*(float(i) for i in range(1, 9))), 60, FRAME, 64
        )
        waits = [entry.queue_wait_us for entry in schedule.entries]
        assert waits == sorted(waits)
        assert waits[-1] > waits[0]

    def test_peak_concurrency_counts_frame_sharers(self):
        # Two UEs split frame 1 (30 + 34 grants), sharing it.
        schedule = schedule_airtime(arrivals_at(10.0, 20.0), 30, FRAME, 64)
        a, b = schedule.entries
        assert a.peak_concurrency == 1
        assert b.peak_concurrency == 1
        # A lone UE shares with nobody.
        lone = schedule_airtime(arrivals_at(10.0), 30, FRAME, 64)
        assert lone.entries[0].peak_concurrency == 0

    def test_overhead_fraction_uses_training_timing(self):
        schedule = schedule_airtime(arrivals_at(10.0), 64, FRAME, 64)
        entry = schedule.entries[0]
        expected_airtime = (
            FRAME.beacon_duration_us
            + 64 * FRAME.measurement_duration_us
            + 1 * FRAME.slot_overhead_us  # one training frame used
            + FRAME.feedback_duration_us
        )
        assert entry.airtime_us == expected_airtime
        assert entry.overhead_fraction == pytest.approx(
            expected_airtime / FRAME.coherence_time_us
        )


class TestBuildSchedule:
    def test_covers_all_admitted_ues(self):
        config = CellConfig(
            scenario=ScenarioConfig(
                tx_shape=(2, 2), rx_shape=(2, 4), rx_beam_grid=(3, 3), fading_blocks=4
            ),
            num_users=40,
            arrival_rate_hz=5000.0,
            search_rate=0.2,
            probe_budget_per_frame=32,
        )
        schedule = build_schedule(config)
        assert len(schedule.entries) == 40
        assert [entry.ue_id for entry in schedule.entries] == list(range(40))
        demand = config.measurements_per_ue()
        assert all(entry.grants == demand for entry in schedule.entries)
        assert sum(schedule.frame_load) == 40 * demand

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            schedule_airtime(arrivals_at(1.0), 0, FRAME, 64)
        with pytest.raises(ConfigurationError):
            schedule_airtime(arrivals_at(1.0), 5, FRAME, 0)

    def test_empty_schedule(self):
        empty = ArrivalSchedule(arrivals=(), admitted=0, rejected=5)
        schedule = schedule_airtime(empty, 5, FRAME, 64)
        assert schedule.entries == ()
        assert schedule.num_frames == 0
