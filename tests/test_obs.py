"""Tests for the observability layer: metrics, recorders, tracing, progress."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    NULL_RECORDER,
    MetricsRecorder,
    MetricsRegistry,
    NullRecorder,
    ProgressReporter,
    TraceRecorder,
    get_recorder,
    percentile,
    read_trace,
    render_trace_summary,
    summarize_trace,
    timer_stats,
    use_recorder,
)


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.increment("hits")
        registry.increment("hits", 4)
        assert registry.counter("hits") == 5.0
        assert registry.counter("misses") == 0.0

    def test_gauge_keeps_latest(self):
        registry = MetricsRegistry()
        registry.set_gauge("loss", 3.0)
        registry.set_gauge("loss", 1.5)
        assert registry.gauges["loss"] == 1.5

    def test_timer_records_positive_duration(self):
        registry = MetricsRegistry()
        with registry.timer("work"):
            pass
        samples = registry.timers["work"]
        assert len(samples) == 1
        assert samples[0] >= 0.0

    def test_summary_shape(self):
        registry = MetricsRegistry()
        registry.record_duration("t", 0.1)
        registry.record_duration("t", 0.3)
        registry.increment("c", 2)
        registry.set_gauge("g", 7.0)
        summary = registry.summary()
        assert summary["timers"]["t"]["count"] == 2
        assert summary["timers"]["t"]["total_s"] == pytest.approx(0.4)
        assert summary["timers"]["t"]["mean_s"] == pytest.approx(0.2)
        assert summary["counters"] == {"c": 2.0}
        assert summary["gauges"] == {"g": 7.0}

    def test_snapshot_merge_roundtrip(self):
        a = MetricsRegistry()
        a.record_duration("t", 0.1)
        a.increment("c", 1)
        b = MetricsRegistry()
        b.record_duration("t", 0.2)
        b.increment("c", 2)
        b.set_gauge("g", 5.0)
        a.merge_snapshot(b.snapshot())
        assert sorted(a.timers["t"]) == [pytest.approx(0.1), pytest.approx(0.2)]
        assert a.counter("c") == 3.0
        assert a.gauges["g"] == 5.0

    def test_merge_none_is_noop(self):
        registry = MetricsRegistry()
        registry.merge_snapshot(None)
        assert registry.summary()["counters"] == {}

    def test_percentiles(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 100.0
        assert percentile(samples, 0.5) == pytest.approx(50.0, abs=1.0)
        assert percentile(samples, 0.95) == pytest.approx(95.0, abs=1.0)

    def test_percentile_empty_is_nan(self):
        assert math.isnan(percentile([], 0.5))
        assert math.isnan(percentile([], 0.0))
        assert math.isnan(percentile([], 1.0))

    def test_percentile_single_sample(self):
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert percentile([3.25], fraction) == 3.25

    def test_percentile_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.01)
        with pytest.raises(ValueError):
            percentile([1.0], 1.01)

    def test_timer_stats_empty_is_nan_free(self):
        stats = timer_stats([])
        assert stats["count"] == 0
        for value in stats.values():
            assert value == 0.0
            assert not math.isnan(value)

    def test_merge_snapshot_json_roundtrip_three_ways(self):
        # Snapshots cross process boundaries as JSON in the campaign
        # layer; merging >= 2 of them must sum counters and keep the
        # last-merged gauge.
        snapshots = []
        for index in range(3):
            registry = MetricsRegistry()
            registry.increment("trials", index + 1)  # 1 + 2 + 3 = 6
            registry.record_duration("solve", 0.1 * (index + 1))
            registry.set_gauge("loss_db", float(index))
            snapshots.append(json.loads(json.dumps(registry.snapshot())))
        merged = MetricsRegistry()
        for snapshot in snapshots:
            merged.merge_snapshot(snapshot)
        assert merged.counter("trials") == 6.0
        assert merged.gauges["loss_db"] == 2.0  # last write wins
        assert sorted(merged.timers["solve"]) == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.3),
        ]


class TestActiveRecorder:
    def test_default_is_null(self):
        recorder = get_recorder()
        assert isinstance(recorder, NullRecorder)
        assert not recorder.enabled
        assert recorder.metrics is None

    def test_null_recorder_is_noop(self):
        with NULL_RECORDER.span("x", a=1) as span:
            span.annotate(b=2)
        NULL_RECORDER.event("e")
        NULL_RECORDER.increment("c")
        NULL_RECORDER.gauge("g", 1.0)

    def test_use_recorder_installs_and_restores(self):
        recorder = MetricsRecorder()
        assert get_recorder() is not recorder
        with use_recorder(recorder):
            assert get_recorder() is recorder
            inner = MetricsRecorder()
            with use_recorder(inner):
                assert get_recorder() is inner
            assert get_recorder() is recorder
        assert isinstance(get_recorder(), NullRecorder)

    def test_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with use_recorder(MetricsRecorder()):
                raise RuntimeError("boom")
        assert isinstance(get_recorder(), NullRecorder)


class TestMetricsRecorder:
    def test_span_feeds_timer(self):
        recorder = MetricsRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        assert len(recorder.metrics.timers["outer"]) == 1
        assert len(recorder.metrics.timers["inner"]) == 1

    def test_span_nesting_ids(self):
        recorder = MetricsRecorder()
        with recorder.span("outer") as outer:
            assert outer.depth == 0
            assert outer.parent_id is None
            with recorder.span("inner") as inner:
                assert inner.depth == 1
                assert inner.parent_id == outer.span_id
            with recorder.span("inner2") as inner2:
                assert inner2.parent_id == outer.span_id

    def test_event_counts(self):
        recorder = MetricsRecorder()
        recorder.event("solver.iteration", residual=0.5)
        recorder.event("solver.iteration", residual=0.1)
        assert recorder.metrics.counter("solver.iteration") == 2.0


class TestTraceRecorder:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            with recorder.span("outer", kind="test") as outer:
                recorder.event("tick", value=1)
                with recorder.span("inner"):
                    pass
                outer.annotate(result="done")
            recorder.increment("count", 3)
            recorder.gauge("level", 0.5)
        records = read_trace(path)
        kinds = [record["type"] for record in records]
        assert kinds[0] == "trace"
        assert kinds[-1] == "summary"
        assert "span" in kinds and "event" in kinds
        assert "counter" in kinds and "gauge" in kinds

    def test_span_hierarchy_in_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            with recorder.span("outer") as outer:
                with recorder.span("inner"):
                    pass
        spans = {r["name"]: r for r in read_trace(path) if r["type"] == "span"}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["inner"]["depth"] == 1
        assert spans["outer"]["parent_id"] is None
        assert spans["outer"]["dur_s"] >= spans["inner"]["dur_s"]

    def test_annotations_survive(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            with recorder.span("solve") as span:
                span.annotate(iterations=7, converged=True)
        span_record = next(r for r in read_trace(path) if r["type"] == "span")
        assert span_record["attrs"] == {"iterations": 7, "converged": True}

    def test_summary_record_has_metrics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            recorder.increment("c", 2)
        summary = read_trace(path)[-1]
        assert summary["type"] == "summary"
        assert summary["metrics"]["counters"]["c"] == 2.0

    def test_read_trace_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "trace"}\nnot json\n')
        with pytest.raises(ValueError, match="malformed"):
            read_trace(path)

    def test_read_trace_rejects_untyped_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "x"}\n')
        with pytest.raises(ValueError, match="'type'"):
            read_trace(path)

    def test_close_idempotent(self, tmp_path):
        recorder = TraceRecorder(tmp_path / "trace.jsonl")
        recorder.close()
        recorder.close()


class TestSummarize:
    def test_summarize_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            for converged in (True, True, False):
                with recorder.span("solver.test") as span:
                    span.annotate(iterations=10, converged=converged)
            recorder.increment("measurements", 42)
            recorder.event("iteration")
        summary = summarize_trace(read_trace(path))
        assert summary["spans"]["solver.test"]["count"] == 3
        solver = summary["solvers"]["solver.test"]
        assert solver["solves"] == 3
        assert solver["mean_iterations"] == pytest.approx(10.0)
        assert solver["converged_fraction"] == pytest.approx(2 / 3)
        assert summary["counters"]["measurements"] == 42.0
        assert summary["events"]["iteration"] == 1

    def test_render_includes_sections(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            with recorder.span("solver.test") as span:
                span.annotate(iterations=5, converged=True)
        text = render_trace_summary(summarize_trace(read_trace(path)))
        assert "solver.test" in text
        assert "solver convergence" in text
        assert "p95" in text

    def test_render_empty(self):
        text = render_trace_summary(summarize_trace([]))
        assert "empty trace" in text

    def test_summarize_parallel_section(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            with recorder.span("run_trials_parallel", workers=2):
                recorder.event("parallel.batch_merged", worker=0)
                recorder.event("parallel.batch_merged", worker=1)
                recorder.event("parallel.pool_broken")
        summary = summarize_trace(read_trace(path))
        assert summary["parallel"] == {
            "runs": 1,
            "batches_merged": 2,
            "pool_breaks": 1,
        }
        text = render_trace_summary(summary)
        assert "parallel execution" in text
        assert "batches merged 2" in text
        assert "pool breaks 1" in text

    def test_summarize_campaign_section(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            with recorder.span("campaign.run", shards=2):
                for attempts in (1, 3):
                    with recorder.span("campaign.shard") as span:
                        span.annotate(attempts=attempts)
                recorder.increment("campaign.shards_executed", 2)
                recorder.increment("campaign.retries", 2)
                recorder.increment("campaign.heartbeats", 6)
                recorder.event("campaign.shard_timeout")
        summary = summarize_trace(read_trace(path))
        campaign = summary["campaign"]
        assert campaign["runs"] == 1
        assert campaign["shards_executed"] == 2.0
        assert campaign["retries"] == 2.0
        assert campaign["heartbeats"] == 6.0
        assert campaign["timeouts"] == 1
        assert campaign["mean_attempts"] == pytest.approx(2.0)
        text = render_trace_summary(summary)
        assert "campaign scheduler" in text
        assert "executed 2" in text
        assert "heartbeats 6" in text

    def test_summarize_plain_trace_omits_sections(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            with recorder.span("trial"):
                pass
        summary = summarize_trace(read_trace(path))
        assert summary["parallel"] == {}
        assert summary["campaign"] == {}
        text = render_trace_summary(summary)
        assert "parallel execution" not in text
        assert "campaign scheduler" not in text


class TestProgressReporter:
    def test_final_event_always_fires(self):
        events = []
        reporter = ProgressReporter(3, events.append, min_interval_s=1e9)
        reporter.update()
        reporter.update()
        reporter.update()
        # first fire (no previous fire) plus the completion fire
        assert events[-1].done == 3
        assert events[-1].total == 3
        assert events[-1].fraction == 1.0

    def test_throttling_with_fake_clock(self):
        now = [0.0]
        events = []
        reporter = ProgressReporter(
            100, events.append, min_interval_s=10.0, clock=lambda: now[0]
        )
        for _ in range(50):
            now[0] += 0.1
            reporter.update()
        assert len(events) < 10  # throttled far below one event per update

    def test_eta_estimate(self):
        now = [0.0]
        events = []
        reporter = ProgressReporter(
            4, events.append, min_interval_s=0.0, clock=lambda: now[0]
        )
        now[0] = 1.0
        reporter.update()
        assert events[-1].eta_s == pytest.approx(3.0)

    def test_no_callback_is_cheap(self):
        reporter = ProgressReporter(5)
        for _ in range(5):
            reporter.update()
        assert reporter.done == 5

    def test_report_never_regresses(self):
        reporter = ProgressReporter(10)
        reporter.report(7)
        reporter.report(3)
        assert reporter.done == 7
        reporter.report(99)
        assert reporter.done == 10


class TestSummarizeDistributedCampaign:
    def test_worker_and_lease_counters_surface(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            for lane in (0, 1):
                with recorder.span("campaign.worker", worker_id=f"w{lane}", worker=lane):
                    with recorder.span("campaign.shard", worker=lane):
                        pass
            recorder.increment("campaign.shards_executed", 2)
            recorder.increment("campaign.lease_conflicts", 3)
            recorder.increment("campaign.lease_takeovers", 1)
            recorder.increment("campaign.lease_discards", 1)
        summary = summarize_trace(read_trace(path))
        campaign = summary["campaign"]
        assert campaign["workers"] == 2
        assert campaign["lease_conflicts"] == 3.0
        assert campaign["lease_takeovers"] == 1.0
        assert campaign["lease_discards"] == 1.0
        text = render_trace_summary(summary)
        assert "workers 2" in text
        assert "lease conflicts 3" in text
        assert "takeovers 1" in text

    def test_lease_line_hidden_for_solo_campaigns(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            with recorder.span("campaign.run"):
                recorder.increment("campaign.shards_executed", 1)
        text = render_trace_summary(summarize_trace(read_trace(path)))
        assert "campaign scheduler" in text
        assert "lease conflicts" not in text
