"""Tests for the command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "fig5", "--quick", "--trials", "3", "--seed", "7"]
        )
        assert args.experiment == "fig5"
        assert args.quick
        assert args.trials == 3
        assert args.seed == 7

    def test_align_options(self):
        args = build_parser().parse_args(["align", "--channel", "singlepath", "--rate", "0.2"])
        assert args.channel == "singlepath"
        assert args.rate == 0.2

    def test_run_trace_options(self):
        args = build_parser().parse_args(
            ["run", "fig6", "--quick", "--trace", "out.jsonl", "--progress"]
        )
        assert args.trace == "out.jsonl"
        assert args.progress

    def test_trace_summarize_parses(self):
        args = build_parser().parse_args(["trace", "summarize", "out.jsonl"])
        assert args.trace_file == "out.jsonl"

    def test_log_level_option(self):
        args = build_parser().parse_args(["--log-level", "debug", "list"])
        assert args.log_level == "debug"


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("fig5", "fig6", "fig7", "fig8", "lowrank"):
            assert experiment_id in output

    def test_run_quick(self, capsys):
        assert main(["run", "mc-recovery", "--quick"]) == 0
        assert "rel. error" in capsys.readouterr().out

    def test_run_writes_json(self, capsys, tmp_path: Path):
        target = tmp_path / "out.json"
        assert main(["run", "mc-recovery", "--quick", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["id"] == "mc-recovery"
        assert "data" in payload

    def test_run_unknown_experiment(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "not-an-experiment"])

    def test_align(self, capsys):
        assert (
            main(
                [
                    "align",
                    "--channel",
                    "multipath",
                    "--rate",
                    "0.05",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        for name in ("Random", "Scan", "Proposed"):
            assert name in output

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestCampaignCli:
    def test_run_parser_options(self):
        args = build_parser().parse_args(
            [
                "campaign",
                "run",
                "--store",
                "results/camp",
                "--rates",
                "0.1,0.2",
                "--trials",
                "4",
                "--shard-trials",
                "2",
                "--workers",
                "2",
                "--retries",
                "1",
                "--quick",
            ]
        )
        assert args.campaign_command == "run"
        assert args.store == "results/camp"
        assert args.rates == "0.1,0.2"
        assert args.shard_trials == 2
        assert args.workers == 2
        assert args.retries == 1
        assert args.quick

    def test_resume_is_alias_of_run(self):
        args = build_parser().parse_args(
            ["campaign", "resume", "--store", "s", "--quick"]
        )
        assert args.campaign_command == "resume"

    def test_store_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "run"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "status"])

    def test_status_empty_store(self, capsys, tmp_path: Path):
        assert main(["campaign", "status", "--store", str(tmp_path / "none")]) == 0
        assert "no campaigns recorded" in capsys.readouterr().out

    def test_run_status_resume_gc_cycle(self, capsys, tmp_path: Path):
        store = tmp_path / "store"
        sweep_json = tmp_path / "sweep.json"
        argv = [
            "campaign",
            "run",
            "--store",
            str(store),
            "--rates",
            "0.05",
            "--trials",
            "1",
            "--shard-trials",
            "1",
            "--seed",
            "3",
            "--json",
            str(sweep_json),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "executed 1 shards, skipped 0" in out
        for name in ("Random", "Scan", "Proposed"):
            assert name in out

        assert main(["campaign", "status", "--store", str(store)]) == 0
        status_out = capsys.readouterr().out
        assert "[complete]" in status_out
        assert "1 done / 0 pending / 0 failed" in status_out

        # resume skips the completed shard and reproduces the same JSON
        first_bytes = sweep_json.read_bytes()
        argv[1] = "resume"
        assert main(argv) == 0
        assert "executed 0 shards, skipped 1" in capsys.readouterr().out
        assert sweep_json.read_bytes() == first_bytes

        payload = json.loads(sweep_json.read_text())
        assert payload["provenance"]["base_seed"] == 3

        assert main(["campaign", "gc", "--store", str(store)]) == 0
        assert "removed 0 artifact(s)" in capsys.readouterr().out


class TestTracing:
    def test_run_writes_parseable_trace(self, capsys, tmp_path: Path):
        from repro.obs import read_trace

        trace_path = tmp_path / "t.jsonl"
        assert main(["run", "fig6", "--quick", "--trials", "2", "--trace", str(trace_path)]) == 0
        records = read_trace(trace_path)
        kinds = {record["type"] for record in records}
        assert {"trace", "span", "summary"} <= kinds
        names = {record.get("name") for record in records}
        assert "trial" in names
        assert "solver.ml_covariance.iteration" in names

    def test_trace_summarize_renders_table(self, capsys, tmp_path: Path):
        trace_path = tmp_path / "t.jsonl"
        assert main(["run", "fig6", "--quick", "--trials", "2", "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace_path)]) == 0
        output = capsys.readouterr().out
        assert "Trace summary" in output
        assert "solver.ml_covariance" in output
        assert "solver convergence" in output

    def test_align_prints_solver_diagnostics(self, capsys):
        assert main(["align", "--channel", "multipath", "--rate", "0.05", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "ml-covariance solver:" in output
        assert "converged" in output

    def test_align_trace(self, capsys, tmp_path: Path):
        from repro.obs import read_trace

        trace_path = tmp_path / "align.jsonl"
        assert (
            main(
                ["align", "--channel", "multipath", "--rate", "0.05", "--trace", str(trace_path)]
            )
            == 0
        )
        assert any(record["type"] == "span" for record in read_trace(trace_path))

    def test_progress_flag(self, capsys, tmp_path: Path):
        assert main(["run", "fig6", "--quick", "--trials", "2", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "sweep:" in err


class TestDiagnosticsCli:
    def test_profile_parser_options(self):
        args = build_parser().parse_args(
            ["run", "fig6", "--profile", "--profile-mode", "sample", "--profile-top", "5"]
        )
        assert args.profile
        assert args.profile_mode == "sample"
        assert args.profile_top == 5

    def test_trace_export_parser_options(self):
        args = build_parser().parse_args(
            ["trace", "export", "t.jsonl", "--format", "chrome", "--out", "t.json"]
        )
        assert args.trace_file == "t.jsonl"
        assert args.format == "chrome"
        assert args.out == "t.json"

    def test_campaign_watch_parser_options(self):
        args = build_parser().parse_args(
            ["campaign", "watch", "--store", "s", "--once", "--interval", "0.5"]
        )
        assert args.campaign_command == "watch"
        assert args.once
        assert args.interval == 0.5

    def test_run_with_profile_prints_hotspots(self, capsys):
        assert main(["run", "fig6", "--quick", "--trials", "2", "--profile"]) == 0
        output = capsys.readouterr().out
        assert "Profile hotspots" in output
        assert "mode=cprofile" in output

    def test_run_with_openmetrics_writes_exposition(self, capsys, tmp_path: Path):
        from repro.obs import parse_openmetrics

        metrics_path = tmp_path / "m.prom"
        assert (
            main(
                ["run", "fig6", "--quick", "--trials", "2", "--openmetrics", str(metrics_path)]
            )
            == 0
        )
        families = parse_openmetrics(metrics_path.read_text(encoding="utf-8"))
        assert any(name.startswith("repro_scheme_") for name in families)

    def test_trace_export_chrome_validates(self, capsys, tmp_path: Path):
        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "t.jsonl"
        assert main(["run", "fig6", "--quick", "--trials", "2", "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        out_path = tmp_path / "t.chrome.json"
        assert main(["trace", "export", str(trace_path), "--out", str(out_path)]) == 0
        assert "trace events" in capsys.readouterr().out
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        validate_chrome_trace(payload)

    def test_trace_export_missing_file_errors(self, capsys, tmp_path: Path):
        assert main(["trace", "export", str(tmp_path / "absent.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_metrics_export_stdout(self, capsys, tmp_path: Path):
        from repro.obs import parse_openmetrics

        trace_path = tmp_path / "t.jsonl"
        assert main(["run", "fig6", "--quick", "--trials", "2", "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["metrics", "export", str(trace_path)]) == 0
        output = capsys.readouterr().out
        families = parse_openmetrics(output)
        assert any(name.startswith("repro_") for name in families)

    def test_campaign_status_json(self, capsys, tmp_path: Path):
        store = tmp_path / "store"
        argv = [
            "campaign", "run", "--store", str(store),
            "--rates", "0.05", "--trials", "1", "--shard-trials", "1",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["campaign", "status", "--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert payload[0]["complete"] is True
        assert payload[0]["counts"]["done"] == 1

    def test_campaign_watch_once(self, capsys, tmp_path: Path):
        store = tmp_path / "store"
        argv = [
            "campaign", "run", "--store", str(store),
            "--rates", "0.05", "--trials", "1", "--shard-trials", "1",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["campaign", "watch", "--store", str(store), "--once"]) == 0
        output = capsys.readouterr().out
        assert "campaign complete" in output
        assert "shards: 1 done" in output

    def test_campaign_watch_empty_store(self, capsys, tmp_path: Path):
        assert main(["campaign", "watch", "--store", str(tmp_path / "none"), "--once"]) == 0
        assert "no campaigns recorded" in capsys.readouterr().out


class TestCampaignDistributedCli:
    def test_launch_parser_options(self):
        args = build_parser().parse_args(
            [
                "campaign",
                "launch",
                "--store",
                "s",
                "--workers",
                "4",
                "--quick",
                "--lease-ttl",
                "10",
                "--claim-batch",
                "2",
            ]
        )
        assert args.campaign_command == "launch"
        assert args.workers == 4
        assert args.lease_ttl == 10.0
        assert args.claim_batch == 2

    def test_worker_parser_options(self):
        args = build_parser().parse_args(
            [
                "campaign",
                "worker",
                "abc123",
                "--store",
                "s",
                "--worker-id",
                "w7",
                "--poll",
                "0.1",
                "--max-shards",
                "3",
            ]
        )
        assert args.campaign_command == "worker"
        assert args.plan == "abc123"
        assert args.worker_id == "w7"
        assert args.poll == 0.1
        assert args.max_shards == 3

    def test_worker_plan_is_optional(self):
        args = build_parser().parse_args(["campaign", "worker", "--store", "s"])
        assert args.plan is None

    def test_worker_on_empty_store_errors(self, capsys, tmp_path: Path):
        code = main(["campaign", "worker", "--store", str(tmp_path / "none")])
        assert code == 1
        assert "no campaign manifests" in capsys.readouterr().err

    def test_worker_end_to_end(self, capsys, tmp_path: Path):
        store = tmp_path / "store"
        # Record the plan without executing it (a worker needs a manifest).
        from repro.campaign import ShardStore
        from repro.cli import _campaign_plan_from_args

        plan_args = build_parser().parse_args(
            ["campaign", "run", "--store", str(store), "--quick", "--shard-trials", "4"]
        )
        _, plan = _campaign_plan_from_args(plan_args)
        ShardStore(store).save_manifest(plan)

        code = main(
            ["campaign", "worker", "--store", str(store), "--worker-id", "w0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "worker w0: executed" in out

        # Worker provenance lands in campaign status --json.
        assert main(["campaign", "status", "--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        health = payload[0] if isinstance(payload, list) else payload
        assert health["complete"]
        assert {shard["worker"] for shard in health["shards"]} == {"w0"}

    def test_worker_ambiguous_plan_errors(self, capsys, tmp_path: Path):
        store = tmp_path / "store"
        from repro.campaign import ShardStore
        from repro.cli import _campaign_plan_from_args

        shard_store = ShardStore(store)
        for seed in (1, 2):
            plan_args = build_parser().parse_args(
                [
                    "campaign", "run", "--store", str(store),
                    "--quick", "--seed", str(seed),
                ]
            )
            _, plan = _campaign_plan_from_args(plan_args)
            shard_store.save_manifest(plan)
        code = main(["campaign", "worker", "--store", str(store)])
        assert code == 1
        assert "name one by digest prefix" in capsys.readouterr().err

    def test_launch_end_to_end(self, capsys, tmp_path: Path):
        store = tmp_path / "store"
        code = main(
            [
                "campaign",
                "launch",
                "--store",
                str(store),
                "--workers",
                "2",
                "--quick",
                "--shard-trials",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "launching 2 lease-based worker(s)" in out
        assert "shards by worker:" in out
        assert "Campaign sweep" in out


class TestCellCli:
    QUICK = [
        "cell", "serve", "--quick", "--users", "16", "--arrival", "5000",
        "--rate", "0.2", "--probe-budget", "32", "--seed", "5",
    ]

    def test_serve_parses(self):
        args = build_parser().parse_args(
            ["cell", "serve", "--users", "100", "--arrival", "1500",
             "--duration", "0.5", "--scheme", "Scan", "--workers", "2"]
        )
        assert args.cell_command == "serve"
        assert args.users == 100
        assert args.arrival == 1500.0
        assert args.duration == 0.5
        assert args.workers == 2

    def test_quick_serve_renders_summary(self, capsys):
        assert main(self.QUICK) == 0
        out = capsys.readouterr().out
        assert "cell plan" in out
        assert "latency (ms)" in out
        assert "SNR loss (dB)" in out

    def test_summary_byte_identical_across_modes(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(self.QUICK + ["--summary", str(a)]) == 0
        assert main(self.QUICK + ["--serial", "--summary", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_openmetrics_output_parses(self, tmp_path, capsys):
        from repro.obs.openmetrics import parse_openmetrics

        target = tmp_path / "cell.prom"
        assert main(self.QUICK + ["--openmetrics", str(target)]) == 0
        capsys.readouterr()
        families = parse_openmetrics(target.read_text())
        assert "repro_cell_ues_done" in families

    def test_store_resume_reports_cached(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(self.QUICK + ["--store", store, "--shard-ues", "8"]) == 0
        capsys.readouterr()
        assert main(self.QUICK + ["--store", store, "--shard-ues", "8"]) == 0
        out = capsys.readouterr().out
        assert "(cached 2)" in out

    def test_bad_scheme_errors(self, capsys):
        assert main(["cell", "serve", "--quick", "--scheme", "NoSuch"]) == 2
        assert "error" in capsys.readouterr().err
