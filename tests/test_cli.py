"""Tests for the command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "fig5", "--quick", "--trials", "3", "--seed", "7"]
        )
        assert args.experiment == "fig5"
        assert args.quick
        assert args.trials == 3
        assert args.seed == 7

    def test_align_options(self):
        args = build_parser().parse_args(["align", "--channel", "singlepath", "--rate", "0.2"])
        assert args.channel == "singlepath"
        assert args.rate == 0.2


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("fig5", "fig6", "fig7", "fig8", "lowrank"):
            assert experiment_id in output

    def test_run_quick(self, capsys):
        assert main(["run", "mc-recovery", "--quick"]) == 0
        assert "rel. error" in capsys.readouterr().out

    def test_run_writes_json(self, capsys, tmp_path: Path):
        target = tmp_path / "out.json"
        assert main(["run", "mc-recovery", "--quick", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["id"] == "mc-recovery"
        assert "data" in payload

    def test_run_unknown_experiment(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "not-an-experiment"])

    def test_align(self, capsys):
        assert (
            main(
                [
                    "align",
                    "--channel",
                    "multipath",
                    "--rate",
                    "0.05",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        for name in ("Random", "Scan", "Proposed"):
            assert name in output

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
