"""Tests for cell shards, the store integration, and the serve surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.store import ShardStore
from repro.cell.config import CellConfig
from repro.cell.metrics import UERecord, merge_records, summarize_records
from repro.cell.service import render_cell_report, serve_cell, summary_payload
from repro.cell.shards import (
    CELL_SHARD_KIND,
    execute_shard,
    plan_cell,
    run_cell_plan,
)
from repro.exceptions import ConfigurationError
from repro.obs.openmetrics import parse_openmetrics
from repro.sim.config import ScenarioConfig
from repro.utils.serialization import dumps


def small_cell(**overrides) -> CellConfig:
    defaults = dict(
        scenario=ScenarioConfig(
            tx_shape=(2, 2), rx_shape=(2, 4), rx_beam_grid=(3, 3), fading_blocks=4
        ),
        num_users=24,
        arrival_rate_hz=5000.0,
        search_rate=0.25,
        probe_budget_per_frame=16,
        interference_coupling=0.2,
    )
    defaults.update(overrides)
    return CellConfig(**defaults)


class TestPlanAndShards:
    def test_plan_partitions_all_ues(self):
        plan = plan_cell(small_cell(), shard_ues=10)
        assert [s.ue_start for s in plan.shards] == [0, 10, 20]
        assert [s.ue_count for s in plan.shards] == [10, 10, 4]
        assert plan.num_ues == 24

    def test_digest_stable_and_spec_sensitive(self):
        a = plan_cell(small_cell(), shard_ues=10)
        b = plan_cell(small_cell(), shard_ues=10)
        assert a.digest == b.digest
        c = plan_cell(small_cell(base_seed=9), shard_ues=10)
        assert a.digest != c.digest
        assert len({s.digest for s in a.shards}) == len(a.shards)

    def test_plan_respects_duration_truncation(self):
        config = small_cell(num_users=200, arrival_rate_hz=1000.0, duration_s=0.05)
        plan = plan_cell(config, shard_ues=16)
        assert plan.num_ues < 200

    def test_shard_records_match_full_run(self):
        config = small_cell()
        plan = plan_cell(config, shard_ues=10)
        full = run_cell_plan(plan, batch_users=8)
        middle = execute_shard(plan.shards[1], batch_users=8)
        assert middle == full[10:20]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            plan_cell(small_cell(), shard_ues=0)


class TestStoreIntegration:
    def test_resume_serves_from_artifacts(self, tmp_path):
        config = small_cell()
        plan = plan_cell(config, shard_ues=10)
        store = ShardStore(tmp_path / "store")
        first = run_cell_plan(plan, store=store, batch_users=8)
        seen = []
        second = run_cell_plan(
            plan,
            store=store,
            batch_users=8,
            on_shard=lambda shard, records, cached: seen.append(cached),
        )
        assert second == first
        assert seen == [True, True, True]

    def test_artifacts_survive_gc(self, tmp_path):
        config = small_cell()
        plan = plan_cell(config, shard_ues=10)
        store = ShardStore(tmp_path / "store")
        run_cell_plan(plan, store=store, batch_users=8)
        store.save_manifest(plan)
        assert store.gc() == []
        for shard in plan.shards:
            assert store.get_artifact(shard.digest, CELL_SHARD_KIND) is not None

    def test_unreferenced_artifacts_collected(self, tmp_path):
        config = small_cell()
        plan = plan_cell(config, shard_ues=10)
        store = ShardStore(tmp_path / "store")
        run_cell_plan(plan, store=store, batch_users=8)
        # No manifest saved: every cell artifact (and its heartbeat
        # litter) is orphaned.
        removed = store.gc()
        removed_artifacts = [p for p in removed if p.parent == store.shard_dir]
        assert len(removed_artifacts) == len(plan.shards)
        for shard in plan.shards:
            assert store.get_artifact(shard.digest, CELL_SHARD_KIND) is None

    def test_heartbeats_written(self, tmp_path):
        config = small_cell()
        plan = plan_cell(config, shard_ues=10)
        store = ShardStore(tmp_path / "store")
        run_cell_plan(plan, store=store, batch_users=8)
        beats = store.read_heartbeats(plan.digest)
        assert len(beats) == len(plan.shards)
        assert all(beat["status"] == "done" for beat in beats.values())
        assert all(isinstance(beat.get("host"), str) for beat in beats.values())


class TestWorkerPool:
    def test_worker_pool_bit_identical(self):
        config = small_cell()
        plan = plan_cell(config, shard_ues=8)
        serial = run_cell_plan(plan, batch_users=8)
        pooled = run_cell_plan(plan, batch_users=8, workers=2)
        assert pooled == serial


class TestServe:
    def test_summary_byte_identical_across_runs_and_modes(self, tmp_path):
        config = small_cell()
        paths = [tmp_path / name for name in ("a.json", "b.json", "c.json", "d.json")]
        serve_cell(config, batch_users=8, summary_path=paths[0])
        serve_cell(config, batch_users=8, summary_path=paths[1])
        serve_cell(config, batch_users=None, summary_path=paths[2])
        # Shard size is an execution knob: it must not leak into the bytes.
        serve_cell(config, batch_users=8, shard_ues=5, summary_path=paths[3])
        blobs = [path.read_bytes() for path in paths]
        assert blobs[0] == blobs[1] == blobs[2] == blobs[3]

    def test_openmetrics_parses_and_counts(self, tmp_path):
        config = small_cell()
        target = tmp_path / "cell.prom"
        report = serve_cell(config, batch_users=8, openmetrics_path=target)
        families = parse_openmetrics(target.read_text())
        assert "repro_cell_ues_done" in families
        samples = {
            name: value
            for name, _, value in families["repro_cell_ues_done"]["samples"]
        }
        assert samples["repro_cell_ues_done_total"] == float(len(report.records))
        assert "repro_cell_users" in families
        assert "repro_cell_serve_seconds" in families

    def test_summary_distributions(self):
        config = small_cell()
        report = serve_cell(config, batch_users=8)
        summary = report.summary
        assert summary["num_ues"] == 24
        for key in ("latency_ms", "queue_wait_ms", "snr_loss_db", "overhead_fraction"):
            dist = summary["distributions"][key]
            assert dist["min"] <= dist["p50"] <= dist["p90"] <= dist["p99"] <= dist["max"]
        assert summary["throughput_ues_per_s"] > 0
        rendered = render_cell_report(report)
        assert "latency (ms)" in rendered
        assert report.plan.digest in rendered

    def test_summary_payload_has_no_wallclock(self):
        report = serve_cell(small_cell(), batch_users=8)
        payload = summary_payload(report)
        assert set(payload) == {
            "kind",
            "digest",
            "config",
            "summary",
            "records",
        }
        assert payload["digest"] == report.plan.config_digest
        assert payload["config"] == report.config.to_dict()


class TestRecords:
    def test_record_round_trip_exact(self):
        config = small_cell()
        report = serve_cell(config, batch_users=8)
        for record in report.records[:5]:
            rebuilt = UERecord.from_payload(record.to_payload())
            assert rebuilt == record

    def test_merge_rejects_mismatch(self):
        config = small_cell()
        report = serve_cell(config, batch_users=8)
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            merge_records(report.schedule.entries[:3], [])

    def test_summarize_requires_records(self):
        config = small_cell()
        report = serve_cell(config, batch_users=8)
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            summarize_records([], report.schedule)
