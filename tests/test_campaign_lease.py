"""Tests for atomic shard leases: acquire/renew/release, expiry, jitter."""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.campaign.lease import (
    DEFAULT_LEASE_TTL_S,
    LeaseManager,
    LeaseRecord,
    backoff_delay,
    lease_expired,
)
from repro.campaign.store import ShardStore
from repro.utils.serialization import dump, load

PLAN = "plan-digest-0000"
SHARD = "shard-digest-aaaa"


@pytest.fixture
def store(tmp_path) -> ShardStore:
    return ShardStore(tmp_path / "store")


def _manager(store, **kwargs) -> LeaseManager:
    return LeaseManager(store, PLAN, **kwargs)


def _dead_pid() -> int:
    """The pid of a process that has already exited and been reaped."""
    process = multiprocessing.get_context("spawn").Process(target=_noop)
    process.start()
    pid = process.pid
    process.join()
    assert pid is not None
    return pid


def _noop() -> None:
    return None


def _expired_record(owner: str = "ghost", **overrides) -> LeaseRecord:
    now = time.time()
    fields = dict(
        plan=PLAN,
        shard=SHARD,
        owner=owner,
        token=f"otherhost:1:{owner}",
        pid=1,  # pid 1 is alive, so only the TTL can expire this
        host="not-this-host",
        acquired_unix_s=now - 500.0,
        renewed_unix_s=now - 400.0,
        ttl_s=30.0,
    )
    fields.update(overrides)
    return LeaseRecord(**fields)


class TestLeaseLifecycle:
    def test_acquire_creates_claim(self, store):
        manager = _manager(store, owner="w0")
        assert manager.acquire(SHARD)
        record = manager.peek(SHARD)
        assert record is not None
        assert record.owner == "w0"
        assert record.token == manager.token
        assert record.plan == PLAN and record.shard == SHARD
        assert manager.still_owns(SHARD)
        assert SHARD in manager.held()

    def test_reacquire_own_lease_is_renewal(self, store):
        manager = _manager(store)
        assert manager.acquire(SHARD)
        assert manager.acquire(SHARD)  # idempotent for the holder
        assert manager.takeovers == 0

    def test_live_foreign_lease_blocks_acquire(self, store):
        first, second = _manager(store, owner="a"), _manager(store, owner="b")
        assert first.acquire(SHARD)
        assert not second.acquire(SHARD)
        assert not second.still_owns(SHARD)
        assert first.still_owns(SHARD)

    def test_release_unlinks_claim(self, store):
        manager = _manager(store)
        manager.acquire(SHARD)
        manager.release(SHARD)
        assert manager.peek(SHARD) is None
        assert not manager.path(SHARD).exists()
        assert SHARD not in manager.held()

    def test_release_never_deletes_a_foreign_claim(self, store):
        loser, winner = _manager(store, owner="loser"), _manager(store, owner="winner")
        loser.acquire(SHARD)
        # The winner takes over behind the loser's back.
        dump(winner._record(SHARD, time.time(), time.time()).to_payload(), loser.path(SHARD))
        loser.release(SHARD)
        record = loser.peek(SHARD)
        assert record is not None and record.owner == "winner"

    def test_renew_bumps_renewed_timestamp(self, store):
        manager = _manager(store)
        manager.acquire(SHARD)
        before = manager.peek(SHARD)
        time.sleep(0.01)
        assert manager.renew(SHARD)
        after = manager.peek(SHARD)
        assert after.renewed_unix_s > before.renewed_unix_s
        assert after.acquired_unix_s == before.acquired_unix_s

    def test_renew_after_loss_reports_false(self, store):
        manager = _manager(store)
        manager.acquire(SHARD)
        dump(_expired_record("thief").to_payload(), manager.path(SHARD))
        assert not manager.renew(SHARD)
        assert SHARD not in manager.held()

    def test_renew_unheld_is_false(self, store):
        assert not _manager(store).renew(SHARD)

    def test_renew_due_only_touches_aged_leases(self, store):
        manager = _manager(store, ttl_s=1000.0)
        manager.acquire(SHARD)
        assert manager.renew_due() == 0  # fresh: far from the ttl margin
        manager._held[SHARD] = time.time() - 600.0  # past 50% of ttl
        assert manager.renew_due() == 1

    def test_release_all(self, store):
        manager = _manager(store)
        for digest in ("s1", "s2", "s3"):
            assert manager.acquire(digest)
        manager.release_all()
        assert manager.held() == {}
        assert all(manager.peek(d) is None for d in ("s1", "s2", "s3"))


class TestExpiryAndTakeover:
    def test_fresh_lease_is_not_expired(self, store):
        manager = _manager(store)
        manager.acquire(SHARD)
        assert not lease_expired(manager.peek(SHARD))

    def test_ttl_expiry(self):
        record = _expired_record()
        assert lease_expired(record)
        # Injectable clock: one second after renewal it is still live.
        assert not lease_expired(record, record.renewed_unix_s + 1.0)

    def test_dead_pid_on_this_host_expires_immediately(self, store):
        import socket

        record = _expired_record(
            host=socket.gethostname(),
            pid=_dead_pid(),
            renewed_unix_s=time.time(),  # freshly renewed, but the pid died
        )
        assert lease_expired(record)

    def test_takeover_of_expired_lease(self, store):
        manager = _manager(store, owner="survivor")
        manager.path(SHARD).parent.mkdir(parents=True, exist_ok=True)
        dump(_expired_record().to_payload(), manager.path(SHARD))
        assert manager.acquire(SHARD)
        assert manager.takeovers == 1
        assert manager.still_owns(SHARD)

    def test_torn_claim_is_healed_by_takeover(self, store):
        manager = _manager(store)
        path = manager.path(SHARD)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"kind": "campaign-lea', encoding="utf-8")  # torn write
        assert manager.peek(SHARD) is None
        assert manager.acquire(SHARD)
        assert manager.takeovers == 1
        assert manager.still_owns(SHARD)

    def test_claim_payload_roundtrip(self, store):
        manager = _manager(store)
        manager.acquire(SHARD)
        record = LeaseRecord.from_payload(load(manager.path(SHARD)))
        assert record == manager.peek(SHARD)
        assert LeaseRecord.from_payload({"kind": "something-else"}) is None
        assert LeaseRecord.from_payload(None) is None

    def test_ttl_must_be_positive(self, store):
        with pytest.raises(ValueError):
            _manager(store, ttl_s=0.0)

    def test_default_ttl_applies(self, store):
        manager = _manager(store)
        manager.acquire(SHARD)
        assert manager.peek(SHARD).ttl_s == DEFAULT_LEASE_TTL_S


class TestRaces:
    def test_exactly_one_winner_when_many_race(self, store):
        managers = [_manager(store, owner=f"w{i}") for i in range(8)]
        barrier = threading.Barrier(len(managers))
        results = [False] * len(managers)

        def contend(slot: int) -> None:
            barrier.wait()
            results[slot] = managers[slot].acquire(SHARD)

        threads = [
            threading.Thread(target=contend, args=(slot,))
            for slot in range(len(managers))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(results) == 1
        winner = results.index(True)
        assert managers[winner].still_owns(SHARD)


class TestBackoffJitter:
    def test_deterministic_per_shard_and_attempt(self):
        assert backoff_delay(0.1, 1, "abc") == backoff_delay(0.1, 1, "abc")
        assert backoff_delay(0.1, 2, "abc") == backoff_delay(0.1, 2, "abc")

    def test_different_shards_get_different_delays(self):
        delays = {backoff_delay(0.1, 1, f"shard-{i}") for i in range(16)}
        assert len(delays) == 16  # 64-bit jitter: collisions imply a bug

    def test_bounds_and_exponential_growth(self):
        for attempt in (1, 2, 3, 4):
            base = 0.1 * 2 ** (attempt - 1)
            delay = backoff_delay(0.1, attempt, "digest")
            assert 0.5 * base <= delay < 1.5 * base

    def test_zero_base_disables_backoff(self):
        assert backoff_delay(0.0, 3, "digest") == 0.0
        assert backoff_delay(-1.0, 3, "digest") == 0.0
