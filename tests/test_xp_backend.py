"""Array-backend dispatch layer suite (:mod:`repro.xp`).

Pins the three contracts the batched engine leans on:

* **Registry resolution** — explicit name > ``use_backend`` scope >
  ``REPRO_BACKEND`` env > the ``numpy`` default; unknown names are hard
  errors while registered-but-unavailable tiers fall back to the
  reference tier with a :class:`~repro.xp.BackendFallbackWarning`.
* **Reference-tier exactness** — the :class:`~repro.xp.ArrayBackend`
  kernel bodies are bitwise the stacked formulations the engine used
  before the dispatch layer, and the loop-form bodies the numba tier
  JITs (:mod:`repro.xp.kernels`) agree with them to float precision.
* **Host-array boundaries** — :func:`repro.xp.to_numpy` is the identity
  on host ndarrays (checkpoint digests stay free under the numpy tier)
  and shard provenance records the producing backend additively.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.xp import (
    ArrayBackend,
    BackendFallbackWarning,
    BackendUnavailableError,
    DEFAULT_BACKEND,
    ENV_VAR,
    active_backend,
    available_backends,
    register_backend,
    registered_backends,
    resolve_backend,
    to_numpy,
    use_backend,
)
from repro.xp import kernels, registry
from repro.xp.backend import USE_BACKEND_DEFAULT


@pytest.fixture
def scratch_registry(monkeypatch):
    """Snapshot the registry so tests can register throwaway backends."""
    monkeypatch.setattr(registry, "_FACTORIES", dict(registry._FACTORIES))
    monkeypatch.setattr(registry, "_INSTANCES", dict(registry._INSTANCES))


class _BrokenBackend(ArrayBackend):
    name = "broken"
    tier = "accelerated"
    exact = False


def _register_broken():
    def factory():
        raise BackendUnavailableError("the 'broken' package is not installed")

    register_backend("broken", factory)


# ----------------------------------------------------------------------
# Registry resolution
# ----------------------------------------------------------------------


class TestResolution:
    def test_default_is_numpy_reference(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        backend = resolve_backend()
        assert backend.name == DEFAULT_BACKEND == "numpy"
        assert backend.tier == "reference"
        assert backend.exact is True

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_backend().name == "numpy"

    def test_names_are_normalized(self):
        assert resolve_backend("  NumPy ") is resolve_backend("numpy")

    def test_instances_are_cached(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")

    def test_unknown_name_is_a_hard_error(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend("cupy-typo")
        # ... also via the environment, and never subject to fallback.
        monkeypatch.setenv(ENV_VAR, "cupy-typo")
        with pytest.raises(ConfigurationError, match="unknown backend"):
            active_backend()

    def test_error_lists_registered_tiers(self):
        with pytest.raises(ConfigurationError, match="numba"):
            resolve_backend("nope")

    def test_shipped_tiers_are_registered(self):
        names = registered_backends()
        assert "numpy" in names and "numba" in names

    def test_numpy_is_always_available(self):
        assert available_backends()["numpy"] is True


class TestUseBackendScope:
    def test_scope_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        instance = _BrokenBackend()
        with use_backend(instance) as active:
            assert active is instance
            assert active_backend() is instance
        assert active_backend().name == "numpy"

    def test_scopes_nest_and_restore(self):
        outer = _BrokenBackend()
        with use_backend(outer):
            with use_backend("numpy") as inner:
                assert active_backend() is inner
            assert active_backend() is outer

    def test_none_is_ambient_passthrough(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with use_backend(None) as active:
            assert active.name == "numpy"

    def test_name_is_resolved(self):
        with use_backend("numpy") as active:
            assert isinstance(active, ArrayBackend)
            assert active.name == "numpy"


class TestFallback:
    def test_unavailable_tier_falls_back_with_warning(self, scratch_registry):
        _register_broken()
        with pytest.warns(BackendFallbackWarning, match="'broken' is unavailable"):
            backend = resolve_backend("broken")
        assert backend.name == "numpy"

    def test_fallback_false_reraises(self, scratch_registry):
        _register_broken()
        with pytest.raises(BackendUnavailableError):
            resolve_backend("broken", fallback=False)

    def test_availability_map_reports_false(self, scratch_registry):
        _register_broken()
        assert available_backends()["broken"] is False

    def test_numba_without_numba_falls_back(self):
        """The shipped accelerated tier degrades cleanly when absent."""
        if available_backends()["numba"]:
            pytest.skip("numba is installed here; the fallback leg covers this")
        with pytest.warns(BackendFallbackWarning, match="'numba' is unavailable"):
            backend = resolve_backend("numba")
        assert backend.name == "numpy"
        assert backend.exact is True

    def test_duplicate_registration_is_rejected(self, scratch_registry):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend("numpy", ArrayBackend)
        register_backend("numpy", ArrayBackend, replace=True)  # explicit wins

    def test_empty_name_is_rejected(self, scratch_registry):
        with pytest.raises(ConfigurationError):
            register_backend("  ", ArrayBackend)


# ----------------------------------------------------------------------
# Host-array boundaries
# ----------------------------------------------------------------------


class TestToNumpy:
    def test_host_ndarray_identity(self):
        array = np.arange(6.0).reshape(2, 3)
        assert to_numpy(array) is array

    def test_non_array_values_convert(self):
        result = to_numpy([[1.0, 2.0], [3.0, 4.0]])
        assert isinstance(result, np.ndarray)
        assert result.shape == (2, 2)

    def test_round_trip_through_backend(self):
        backend = resolve_backend("numpy")
        array = np.linspace(0.0, 1.0, 7)
        moved = backend.asarray(array)
        back = backend.to_numpy(moved)
        assert back.tobytes() == array.tobytes()

    def test_digest_boundary_is_backend_invariant(self):
        """Checkpoint digests hash host arrays; under the numpy tier the
        explicit scope changes nothing byte for byte."""
        from repro.obs.checkpoint import array_digest

        stage = {"Q": np.arange(9.0).reshape(3, 3) + 1j}
        ambient = array_digest(stage)
        with use_backend("numpy"):
            scoped = array_digest(stage)
        assert scoped == ambient


class TestCapabilities:
    def test_reference_probe(self):
        backend = resolve_backend("numpy")
        assert backend.supports("cpu_arrays")
        assert backend.supports("eigh_stack")
        assert backend.supports("svd_gufunc")
        assert not backend.supports("cuda")

    def test_probe_is_cached(self):
        backend = resolve_backend("numpy")
        assert backend.capabilities is backend.capabilities


# ----------------------------------------------------------------------
# Reference kernels vs their pre-dispatch formulations
# ----------------------------------------------------------------------


def _hermitian_stack(batch=4, size=6, seed=11):
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(batch, size, size)) + 1j * rng.normal(
        size=(batch, size, size)
    )
    return (raw + np.conj(raw.transpose(0, 2, 1))) / 2.0


class TestReferenceKernels:
    def test_eigh_stack_matches_public_eigh(self):
        backend = resolve_backend("numpy")
        matrices = _hermitian_stack()
        values, vectors = backend.eigh_stack(matrices, eigh_gufunc=None)
        expected_values, expected_vectors = np.linalg.eigh(matrices)
        assert values.tobytes() == expected_values.tobytes()
        assert vectors.tobytes() == expected_vectors.tobytes()

    def test_eigh_stack_sentinel_uses_probe(self):
        backend = resolve_backend("numpy")
        matrices = _hermitian_stack(seed=13)
        values, _ = backend.eigh_stack(matrices, eigh_gufunc=USE_BACKEND_DEFAULT)
        expected, _ = np.linalg.eigh(matrices)
        assert np.allclose(values, expected, rtol=1e-12, atol=1e-12)

    def test_batch_quadratic_forms_is_the_einsum(self):
        rng = np.random.default_rng(17)
        probes = rng.normal(size=(3, 5, 4)) + 1j * rng.normal(size=(3, 5, 4))
        matrices = _hermitian_stack(batch=3, size=5, seed=19)
        conj = np.conj(probes)
        backend = resolve_backend("numpy")
        result = backend.batch_quadratic_forms(conj, matrices, probes)
        expected = np.real(np.einsum("bnm,bnk,bkm->bm", conj, matrices, probes))
        assert result.tobytes() == expected.tobytes()

    def test_nll_terms_reference(self):
        rng = np.random.default_rng(23)
        lambdas = np.abs(rng.normal(size=(3, 6))) + 0.1
        powers = np.abs(rng.normal(size=(3, 6)))
        backend = resolve_backend("numpy")
        values, weights = backend.nll_terms(lambdas, powers)
        assert values.tobytes() == np.sum(
            np.log(lambdas) + powers / lambdas, axis=1
        ).tobytes()
        assert weights.tobytes() == (1.0 / lambdas - powers / lambdas**2).tobytes()


# ----------------------------------------------------------------------
# Loop-form kernel bodies (what the numba tier JITs)
# ----------------------------------------------------------------------


class TestLoopKernels:
    """The :mod:`repro.xp.kernels` bodies run under plain Python here
    (``prange`` degrades to ``range`` without numba), so the numba
    tier's numerics are testable on any machine."""

    def test_nll_terms_loops(self):
        rng = np.random.default_rng(29)
        lambdas = np.abs(rng.normal(size=(4, 7))) + 0.1
        powers = np.abs(rng.normal(size=(4, 7)))
        values, weights = kernels.nll_terms_loops(lambdas, powers)
        expected_values, expected_weights = ArrayBackend().nll_terms(lambdas, powers)
        assert np.allclose(values, expected_values, rtol=1e-12)
        assert np.allclose(weights, expected_weights, rtol=1e-12)

    def test_batch_adjoint_loops(self):
        rng = np.random.default_rng(31)
        probes = rng.normal(size=(3, 5, 4)) + 1j * rng.normal(size=(3, 5, 4))
        weights = rng.normal(size=(3, 4))
        conj = np.conj(probes)
        result = kernels.batch_adjoint_loops(probes, conj, weights)
        expected = ArrayBackend().batch_adjoint(probes, conj, weights)
        assert np.allclose(result, expected, rtol=1e-12, atol=1e-14)

    def test_batch_quadratic_forms_loops(self):
        rng = np.random.default_rng(37)
        probes = rng.normal(size=(2, 6, 5)) + 1j * rng.normal(size=(2, 6, 5))
        matrices = _hermitian_stack(batch=2, size=6, seed=41)
        conj = np.conj(probes)
        result = kernels.batch_quadratic_forms_loops(conj, matrices, probes)
        expected = ArrayBackend().batch_quadratic_forms(conj, matrices, probes)
        assert np.allclose(result, expected, rtol=1e-12, atol=1e-14)

    def test_eig_reconstruct_loops(self):
        matrices = _hermitian_stack(batch=3, size=5, seed=43)
        thresholds = np.linspace(0.05, 0.3, 3)
        values, vectors = np.linalg.eigh(matrices)
        shrunk = np.clip(values - thresholds[:, None], 0.0, None)
        result = kernels.eig_reconstruct_loops(
            np.ascontiguousarray(vectors), np.ascontiguousarray(shrunk)
        )
        expected = ArrayBackend().soft_threshold_eigenvalues_batch(
            matrices, thresholds, eigh_gufunc=None
        )
        assert np.allclose(result, expected, rtol=1e-12, atol=1e-14)

    def test_svd_reconstruct_loops(self):
        rng = np.random.default_rng(47)
        matrices = rng.normal(size=(3, 6, 4)) + 1j * rng.normal(size=(3, 6, 4))
        thresholds = np.array([0.2, 1.0, 50.0])  # last slice fully shrunk
        u, s, vh = np.linalg.svd(matrices, full_matrices=False)
        shrunk = np.clip(s - thresholds[:, None], 0.0, None)
        out = np.zeros_like(matrices)
        kernels.svd_reconstruct_loops(
            np.ascontiguousarray(u),
            np.ascontiguousarray(shrunk),
            np.ascontiguousarray(vh),
            out,
        )
        expected = ArrayBackend().shrink_singular_values_batch(matrices, thresholds)
        assert np.allclose(out, expected, rtol=1e-12, atol=1e-14)
        assert np.all(out[-1] == 0.0)

    def test_soft_threshold_entries_loops(self):
        rng = np.random.default_rng(53)
        matrix = rng.normal(size=(9, 7)) + 1j * rng.normal(size=(9, 7))
        out = np.empty_like(matrix)
        kernels.soft_threshold_entries_loops(matrix, 0.6, out)
        expected = ArrayBackend().soft_threshold_entries(matrix, 0.6)
        assert np.allclose(out, expected, rtol=1e-12, atol=1e-14)

    def test_steering_phase_exp_loops(self):
        rng = np.random.default_rng(59)
        phases = rng.normal(size=(5, 8))
        result = kernels.steering_phase_exp_loops(phases, 3.0)
        expected = ArrayBackend().steering_phase_exp(phases, 3.0)
        assert np.allclose(result, expected, rtol=1e-12, atol=1e-14)

    def test_quadratic_forms_loops(self):
        rng = np.random.default_rng(61)
        matrix = _hermitian_stack(batch=1, size=6, seed=67)[0]
        vectors = rng.normal(size=(6, 5)) + 1j * rng.normal(size=(6, 5))
        result = kernels.quadratic_forms_loops(
            np.ascontiguousarray(matrix), np.ascontiguousarray(vectors)
        )
        expected = ArrayBackend().quadratic_forms(matrix, vectors)
        assert np.allclose(result, expected, rtol=1e-12, atol=1e-14)

    def test_fused_probe_loops(self):
        rng = np.random.default_rng(71)
        count, num_subpaths, pairs = 5, 3, 4
        block = rng.standard_normal((pairs, 2 * count * num_subpaths + 2 * count))
        coefficients = rng.normal(size=(pairs, num_subpaths)) + 1j * rng.normal(
            size=(pairs, num_subpaths)
        )
        sqrt_powers = np.abs(rng.normal(size=num_subpaths)) + 0.1
        samples, powers = kernels.fused_probe_loops(
            np.ascontiguousarray(block),
            np.ascontiguousarray(coefficients),
            np.ascontiguousarray(sqrt_powers),
            count,
            num_subpaths,
            0.7,
            0.3,
        )
        expected_samples, expected_powers = ArrayBackend().fused_probe_measurements(
            block, coefficients, sqrt_powers, count, num_subpaths, 0.7, 0.3
        )
        assert np.allclose(samples, expected_samples, rtol=1e-12, atol=1e-14)
        assert np.allclose(powers, expected_powers, rtol=1e-12, atol=1e-14)


# ----------------------------------------------------------------------
# Provenance
# ----------------------------------------------------------------------


class TestBackendProvenance:
    def test_shard_provenance_records_backend(self, tmp_path):
        from repro.campaign import plan_effectiveness_sweep, standard_scheme_specs
        from repro.campaign.store import ShardStore
        from repro.sim.config import ScenarioConfig

        plan = plan_effectiveness_sweep(
            ScenarioConfig(), standard_scheme_specs(), [0.1], 2, shard_trials=2
        )
        shard = plan.shards[0]
        losses = {name: [0.0, 1.0] for name in shard.scheme_names()}
        store = ShardStore(tmp_path / "with")
        path = store.put(shard, losses, backend="numpy")
        from repro.utils.serialization import load

        assert load(path)["provenance"]["backend"] == "numpy"
        # ... and is additive: untagged artifacts carry no backend key.
        bare = ShardStore(tmp_path / "without").put(shard, losses)
        assert "backend" not in load(bare)["provenance"]

    def test_accelerated_tier_contract_if_present(self):
        """When numba is installed (the CI accelerated leg), the tier
        must self-describe as non-exact so bitwise suites skip."""
        if not available_backends()["numba"]:
            pytest.skip("numba not installed; fallback is covered above")
        backend = resolve_backend("numba")
        assert backend.name == "numba"
        assert backend.tier == "accelerated"
        assert backend.exact is False
        assert backend.supports("jit")
