"""Tests for repro.utils.serialization."""

from __future__ import annotations

import dataclasses
import enum
import os
from pathlib import Path

import numpy as np
import pytest

from repro.types import BeamPair
from repro.utils.serialization import dump, dumps, load, loads, to_jsonable


class _Kind(enum.Enum):
    ALPHA = "alpha"
    BETA = 2


@dataclasses.dataclass
class _Sample:
    name: str
    values: np.ndarray


class TestToJsonable:
    def test_scalars(self):
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.int32(7)) == 7
        assert to_jsonable(np.bool_(True)) is True
        assert to_jsonable(None) is None

    def test_real_array(self):
        assert to_jsonable(np.arange(3.0)) == [0.0, 1.0, 2.0]

    def test_complex_array(self):
        out = to_jsonable(np.array([1 + 2j]))
        assert out == {"real": [1.0], "imag": [2.0]}

    def test_complex_scalar(self):
        assert to_jsonable(3 + 4j) == {"real": 3.0, "imag": 4.0}

    def test_dataclass(self):
        out = to_jsonable(_Sample(name="x", values=np.zeros(2)))
        assert out == {"name": "x", "values": [0.0, 0.0]}

    def test_nested_dataclass(self):
        out = to_jsonable({"pair": BeamPair(1, 2)})
        assert out == {"pair": {"tx_index": 1, "rx_index": 2}}

    def test_sets_and_tuples(self):
        assert sorted(to_jsonable({1, 2})) == [1, 2]
        assert to_jsonable((1, "a")) == [1, "a"]

    def test_path(self, tmp_path):
        assert to_jsonable(tmp_path) == str(tmp_path)

    def test_unserializable(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_enum(self):
        assert to_jsonable(_Kind.ALPHA) == "alpha"
        assert to_jsonable(_Kind.BETA) == 2
        assert to_jsonable({"k": _Kind.ALPHA}) == {"k": "alpha"}


class TestRoundTrip:
    def test_dumps_loads(self):
        value = {"a": [1, 2.5], "b": "text", "c": None}
        assert loads(dumps(value)) == value

    def test_file_roundtrip(self, tmp_path: Path):
        target = tmp_path / "out.json"
        dump({"x": np.float64(2.0)}, target)
        assert load(target) == {"x": 2.0}

    def test_sorted_keys(self):
        text = dumps({"b": 1, "a": 2})
        assert text.index('"a"') < text.index('"b"')


class TestAtomicDump:
    """A crash mid-write must never leave a truncated or corrupt JSON."""

    def test_no_temp_files_after_success(self, tmp_path: Path):
        target = tmp_path / "out.json"
        dump({"x": 1}, target)
        dump({"x": 2}, target)  # overwrite goes through the same rename
        assert load(target) == {"x": 2}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_interrupted_rename_keeps_old_content(self, tmp_path: Path, monkeypatch):
        """Simulate a Ctrl-C landing exactly at the publish step."""
        target = tmp_path / "out.json"
        dump({"generation": 1}, target)

        def interrupted_replace(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(os, "replace", interrupted_replace)
        with pytest.raises(KeyboardInterrupt):
            dump({"generation": 2}, target)
        monkeypatch.undo()
        assert load(target) == {"generation": 1}  # old file intact
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]  # no .tmp debris

    def test_interrupted_write_keeps_old_content(self, tmp_path: Path, monkeypatch):
        """Simulate the process dying while the temp file is being flushed."""
        target = tmp_path / "out.json"
        dump({"generation": 1}, target)

        def failing_fsync(fd):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "fsync", failing_fsync)
        with pytest.raises(OSError):
            dump({"generation": 2}, target)
        monkeypatch.undo()
        assert load(target) == {"generation": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_relative_path_without_directory(self, tmp_path: Path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        dump({"x": 1}, "bare.json")
        assert load("bare.json") == {"x": 1}
