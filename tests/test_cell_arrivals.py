"""Tests for the cell's seeded Poisson arrival process."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cell.arrivals import (
    ARRIVAL_STREAM,
    CELL_NAMESPACE,
    arrival_schedule,
    cell_root,
    poisson_arrivals,
)
from repro.cell.config import CellConfig
from repro.exceptions import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.utils.rng import labeled_spawn, trial_generator


def small_cell(**overrides) -> CellConfig:
    defaults = dict(
        scenario=ScenarioConfig(
            tx_shape=(2, 2), rx_shape=(2, 4), rx_beam_grid=(3, 3), fading_blocks=4
        ),
        num_users=25,
        arrival_rate_hz=5000.0,
        search_rate=0.2,
        probe_budget_per_frame=32,
    )
    defaults.update(overrides)
    return CellConfig(**defaults)


class TestPoissonArrivals:
    def test_deterministic_for_seed(self):
        config = small_cell()
        first = arrival_schedule(config)
        second = arrival_schedule(config)
        assert first.times_us.tolist() == second.times_us.tolist()
        assert first.admitted == config.num_users
        assert first.rejected == 0

    def test_seed_changes_schedule(self):
        base = arrival_schedule(small_cell())
        other = arrival_schedule(small_cell(base_seed=99))
        assert base.times_us.tolist() != other.times_us.tolist()

    def test_arrivals_strictly_ordered(self):
        schedule = arrival_schedule(small_cell(num_users=200))
        times = schedule.times_us
        assert np.all(np.diff(times) > 0)
        assert [a.ue_id for a in schedule.arrivals] == list(range(200))

    def test_duration_truncates(self):
        config = small_cell(num_users=200, arrival_rate_hz=1000.0, duration_s=0.05)
        schedule = arrival_schedule(config)
        assert schedule.admitted + schedule.rejected == 200
        assert schedule.rejected > 0
        assert schedule.span_us <= 0.05 * 1e6

    def test_statistical_mean_rate(self):
        rng = np.random.default_rng(7)
        schedule = poisson_arrivals(20000, 1000.0, rng)
        mean_gap_s = schedule.span_us / 1e6 / schedule.admitted
        assert mean_gap_s == pytest.approx(1e-3, rel=0.05)

    def test_single_block_stream_cost(self):
        """The whole schedule is one vectorized exponential draw."""
        a, b = np.random.default_rng(3), np.random.default_rng(3)
        poisson_arrivals(64, 2000.0, a)
        b.exponential(scale=1.0 / 2000.0, size=64)
        assert a.standard_normal() == b.standard_normal()


class TestStreamNamespace:
    def test_cell_root_disjoint_from_trial_streams(self):
        """The namespaced root never collides with any UE's trial pool."""
        seed = 2016
        arrival_rng = labeled_spawn(cell_root(seed), [ARRIVAL_STREAM])[ARRIVAL_STREAM]
        arrival_draws = arrival_rng.random(8)
        for ue_id in (0, 1, CELL_NAMESPACE - 1):
            ue_draws = trial_generator(seed, ue_id).random(8)
            assert not np.any(arrival_draws == ue_draws)

    def test_num_users_capped_below_namespace(self):
        with pytest.raises(ConfigurationError):
            small_cell(num_users=CELL_NAMESPACE)


class TestConfigRoundTrip:
    def test_to_from_dict(self):
        config = small_cell(duration_s=0.25)
        rebuilt = CellConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.to_dict() == config.to_dict()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            small_cell(arrival_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            small_cell(search_rate=0.0)
        with pytest.raises(ConfigurationError):
            small_cell(duration_s=-1.0)
        with pytest.raises(ConfigurationError):
            # 1000 grants x 2us + beacon + feedback > 2000us superframe
            small_cell(probe_budget_per_frame=1000)
        with pytest.raises(ConfigurationError):
            small_cell(interference_coupling=-0.1)
