"""Tests for impulsive-interference injection in the measurement engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.measurement.measurer import MeasurementEngine
from repro.types import BeamPair


class TestInterferenceConfig:
    def test_validation(self, small_channel, rng):
        with pytest.raises(ValidationError):
            MeasurementEngine(small_channel, rng, interference_probability=1.5)
        with pytest.raises(ValidationError):
            MeasurementEngine(small_channel, rng, interference_power=-1.0)

    def test_defaults_clean(self, small_channel, rng, tx_codebook, rx_codebook):
        engine = MeasurementEngine(small_channel, rng)
        for index in range(10):
            engine.measure_pair(tx_codebook, rx_codebook, BeamPair(0, index))
        assert engine.interference_hits == 0


class TestInterferenceEffects:
    def test_hit_rate(self, small_channel, tx_codebook, rx_codebook):
        engine = MeasurementEngine(
            small_channel,
            np.random.default_rng(0),
            interference_probability=0.3,
            interference_power=1.0,
        )
        count = 1000
        for index in range(count):
            engine.measure_pair(
                tx_codebook, rx_codebook, BeamPair(index % 4, index // 4 % 18)
            )
        # measure() allows repeated pairs at the engine level; only the
        # context deduplicates. Hit rate concentrates around 30%.
        assert engine.interference_hits == pytest.approx(0.3 * count, rel=0.2)

    def test_power_inflated_on_average(self, small_channel, tx_codebook, rx_codebook):
        pair = BeamPair(0, 0)
        clean = MeasurementEngine(small_channel, np.random.default_rng(1))
        dirty = MeasurementEngine(
            small_channel,
            np.random.default_rng(2),
            interference_probability=1.0,
            interference_power=0.5,
        )
        clean_mean = np.mean(
            [clean.measure_pair(tx_codebook, rx_codebook, pair).power for _ in range(3000)]
        )
        dirty_mean = np.mean(
            [dirty.measure_pair(tx_codebook, rx_codebook, pair).power for _ in range(3000)]
        )
        # Always-on CN(0, 0.5) interference adds exactly 0.5 on average.
        assert dirty_mean - clean_mean == pytest.approx(0.5, rel=0.15)

    def test_zero_power_interference_harmless(
        self, small_channel, tx_codebook, rx_codebook
    ):
        engine = MeasurementEngine(
            small_channel,
            np.random.default_rng(3),
            interference_probability=1.0,
            interference_power=0.0,
        )
        m = engine.measure_pair(tx_codebook, rx_codebook, BeamPair(1, 1))
        assert np.isfinite(m.power)


class TestFusedInterferencePath:
    """measure_pairs with interference fuses; stream stays bit-identical."""

    def _engines(self, small_channel, seed=42, probability=0.3, blocks=4):
        return [
            MeasurementEngine(
                small_channel,
                np.random.default_rng(seed),
                fading_blocks=blocks,
                interference_probability=probability,
                interference_power=2.5,
            )
            for _ in range(2)
        ]

    def test_bit_identical_to_serial_loop(
        self, small_channel, tx_codebook, rx_codebook
    ):
        fused_engine, serial_engine = self._engines(small_channel)
        pairs = [BeamPair(t, r) for t in range(4) for r in range(12)]
        fused = fused_engine.measure_pairs(tx_codebook, rx_codebook, pairs, slot=3)
        serial = [
            serial_engine.measure_pair(tx_codebook, rx_codebook, pair, slot=3)
            for pair in pairs
        ]
        assert [m.power for m in fused] == [m.power for m in serial]
        assert [m.z for m in fused] == [m.z for m in serial]
        assert [m.pair for m in fused] == [m.pair for m in serial]
        assert fused_engine.interference_hits == serial_engine.interference_hits > 0
        assert fused_engine.num_measurements == len(pairs)

    def test_stream_position_identical_after_batch(
        self, small_channel, tx_codebook, rx_codebook
    ):
        # After a fused batch both engines' generators must sit at the
        # same stream position: the next draw agrees bitwise.
        fused_engine, serial_engine = self._engines(small_channel, seed=7)
        pairs = [BeamPair(t, r) for t in range(3) for r in range(6)]
        fused_engine.measure_pairs(tx_codebook, rx_codebook, pairs)
        for pair in pairs:
            serial_engine.measure_pair(tx_codebook, rx_codebook, pair)
        after_fused = fused_engine.measure_pair(
            tx_codebook, rx_codebook, BeamPair(0, 17)
        )
        after_serial = serial_engine.measure_pair(
            tx_codebook, rx_codebook, BeamPair(0, 17)
        )
        assert after_fused.power == after_serial.power
        assert after_fused.z == after_serial.z

    def test_certain_hit_probability(self, small_channel, tx_codebook, rx_codebook):
        fused_engine, serial_engine = self._engines(small_channel, probability=1.0)
        pairs = [BeamPair(0, r) for r in range(10)]
        fused = fused_engine.measure_pairs(tx_codebook, rx_codebook, pairs)
        serial = [
            serial_engine.measure_pair(tx_codebook, rx_codebook, pair)
            for pair in pairs
        ]
        assert fused_engine.interference_hits == len(pairs)
        assert [m.power for m in fused] == [m.power for m in serial]


class TestInterferenceExperiment:
    def test_quick_run(self):
        import repro.experiments as experiments

        result = experiments.run("ext-interference", quick=True)
        means = result.data["mean_loss_db"]
        assert set(means) == {"Random", "Proposed (ML)", "Proposed (backproj)"}
        for series in means.values():
            assert len(series) == 2  # quick: p = 0.0 and 0.3
            assert all(np.isfinite(v) for v in series)
