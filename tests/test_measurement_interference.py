"""Tests for impulsive-interference injection in the measurement engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.measurement.measurer import MeasurementEngine
from repro.types import BeamPair


class TestInterferenceConfig:
    def test_validation(self, small_channel, rng):
        with pytest.raises(ValidationError):
            MeasurementEngine(small_channel, rng, interference_probability=1.5)
        with pytest.raises(ValidationError):
            MeasurementEngine(small_channel, rng, interference_power=-1.0)

    def test_defaults_clean(self, small_channel, rng, tx_codebook, rx_codebook):
        engine = MeasurementEngine(small_channel, rng)
        for index in range(10):
            engine.measure_pair(tx_codebook, rx_codebook, BeamPair(0, index))
        assert engine.interference_hits == 0


class TestInterferenceEffects:
    def test_hit_rate(self, small_channel, tx_codebook, rx_codebook):
        engine = MeasurementEngine(
            small_channel,
            np.random.default_rng(0),
            interference_probability=0.3,
            interference_power=1.0,
        )
        count = 1000
        for index in range(count):
            engine.measure_pair(
                tx_codebook, rx_codebook, BeamPair(index % 4, index // 4 % 18)
            )
        # measure() allows repeated pairs at the engine level; only the
        # context deduplicates. Hit rate concentrates around 30%.
        assert engine.interference_hits == pytest.approx(0.3 * count, rel=0.2)

    def test_power_inflated_on_average(self, small_channel, tx_codebook, rx_codebook):
        pair = BeamPair(0, 0)
        clean = MeasurementEngine(small_channel, np.random.default_rng(1))
        dirty = MeasurementEngine(
            small_channel,
            np.random.default_rng(2),
            interference_probability=1.0,
            interference_power=0.5,
        )
        clean_mean = np.mean(
            [clean.measure_pair(tx_codebook, rx_codebook, pair).power for _ in range(3000)]
        )
        dirty_mean = np.mean(
            [dirty.measure_pair(tx_codebook, rx_codebook, pair).power for _ in range(3000)]
        )
        # Always-on CN(0, 0.5) interference adds exactly 0.5 on average.
        assert dirty_mean - clean_mean == pytest.approx(0.5, rel=0.15)

    def test_zero_power_interference_harmless(
        self, small_channel, tx_codebook, rx_codebook
    ):
        engine = MeasurementEngine(
            small_channel,
            np.random.default_rng(3),
            interference_probability=1.0,
            interference_power=0.0,
        )
        m = engine.measure_pair(tx_codebook, rx_codebook, BeamPair(1, 1))
        assert np.isfinite(m.power)


class TestInterferenceExperiment:
    def test_quick_run(self):
        import repro.experiments as experiments

        result = experiments.run("ext-interference", quick=True)
        means = result.data["mean_loss_db"]
        assert set(means) == {"Random", "Proposed (ML)", "Proposed (backproj)"}
        for series in means.values():
            assert len(series) == 2  # quick: p = 0.0 and 0.3
            assert all(np.isfinite(v) for v in series)
