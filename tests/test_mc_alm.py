"""Tests for IALM robust PCA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mc.alm import rpca_ialm, soft_threshold_entries
from repro.mc.metrics import relative_error
from repro.utils.linalg import random_psd

def _real_low_rank(rng, n1, n2, rank, scale=1.0):
    """A real low-rank matrix (complex PSD .real would double the rank)."""
    left = rng.normal(size=(n1, rank))
    right = rng.normal(size=(rank, n2))
    return scale * (left @ right) / rank


def _real_psd(rng, n, rank, scale=1.0):
    factors = rng.normal(size=(n, rank))
    return scale * (factors @ factors.T) / rank



class TestSoftThresholdEntries:
    def test_real_shrinkage(self):
        out = soft_threshold_entries(np.array([3.0, -2.0, 0.5]), 1.0)
        np.testing.assert_allclose(out, [2.0, -1.0, 0.0])

    def test_complex_preserves_phase(self):
        x = np.array([2.0 * np.exp(1j * 0.7)])
        out = soft_threshold_entries(x, 0.5)
        assert np.angle(out[0]) == pytest.approx(0.7)
        assert abs(out[0]) == pytest.approx(1.5)

    def test_negative_threshold(self):
        with pytest.raises(ValidationError):
            soft_threshold_entries(np.ones(3), -0.1)


class TestRpca:
    def test_clean_low_rank_passthrough(self, rng):
        truth = _real_psd(rng, 20, 2, scale=20.0)
        result = rpca_ialm(truth)
        assert result.converged
        assert relative_error(result.low_rank, truth) < 0.02

    def test_sparse_corruption_separated(self, rng):
        truth = _real_psd(rng, 25, 2, scale=25.0)
        sparse = np.zeros_like(truth)
        indices = rng.choice(25 * 25, size=20, replace=False)
        sparse.flat[indices] = 10.0 * rng.normal(size=20)
        result = rpca_ialm(truth + sparse)
        assert result.converged
        assert relative_error(result.low_rank, truth) < 0.1
        assert relative_error(result.sparse, sparse) < 0.4

    def test_decomposition_identity(self, rng):
        observed = rng.normal(size=(15, 15))
        result = rpca_ialm(observed, max_iterations=300)
        np.testing.assert_allclose(
            result.low_rank + result.sparse, observed, atol=1e-4
        )

    def test_zero_matrix(self):
        result = rpca_ialm(np.zeros((5, 5)))
        assert result.converged
        assert result.iterations == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            rpca_ialm(np.zeros(5))
        with pytest.raises(ValidationError):
            rpca_ialm(np.eye(3), sparsity_weight=0.0)
