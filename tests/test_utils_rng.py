"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import as_generator, complex_normal, spawn, trial_generator


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=8)
        b = as_generator(42).integers(0, 1000, size=8)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng


class TestSpawn:
    def test_count(self, rng):
        assert len(spawn(rng, 5)) == 5

    def test_children_independent_streams(self, rng):
        a, b = spawn(rng, 2)
        assert not np.array_equal(a.integers(0, 10**9, 16), b.integers(0, 10**9, 16))

    def test_spawn_stable_under_extension(self):
        """Adding a consumer must not change earlier children's draws."""
        first = spawn(np.random.default_rng(7), 2)
        second = spawn(np.random.default_rng(7), 3)
        np.testing.assert_array_equal(
            first[0].integers(0, 10**9, 8), second[0].integers(0, 10**9, 8)
        )


class TestTrialGenerator:
    def test_deterministic(self):
        a = trial_generator(1, 3).integers(0, 10**9, 4)
        b = trial_generator(1, 3).integers(0, 10**9, 4)
        np.testing.assert_array_equal(a, b)

    def test_distinct_trials(self):
        a = trial_generator(1, 3).integers(0, 10**9, 8)
        b = trial_generator(1, 4).integers(0, 10**9, 8)
        assert not np.array_equal(a, b)

    def test_distinct_seeds(self):
        a = trial_generator(1, 3).integers(0, 10**9, 8)
        b = trial_generator(2, 3).integers(0, 10**9, 8)
        assert not np.array_equal(a, b)


class TestComplexNormal:
    def test_shape(self, rng):
        assert complex_normal(rng, (3, 4)).shape == (3, 4)

    def test_scalar_shape(self, rng):
        assert complex_normal(rng, ()).shape == ()

    def test_variance_convention(self, rng):
        """E[|x|^2] == variance, split evenly between re/im."""
        samples = complex_normal(rng, 200_000, variance=2.5)
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(2.5, rel=0.02)
        assert np.var(samples.real) == pytest.approx(1.25, rel=0.03)

    def test_zero_mean(self, rng):
        samples = complex_normal(rng, 100_000)
        assert abs(np.mean(samples)) < 0.02

    def test_is_complex(self, rng):
        assert np.iscomplexobj(complex_normal(rng, 5))
