"""Unit tests of the statistical golden gate (benchmarks/check_stats.py).

The compare half is exercised against synthetic stat tables (pass/fail
tolerance, missing schemes/rates/stats); the compute half is exercised
once against the committed golden file, which doubles as the
keep-the-golden-honest check: if a science change shifts the seeded
statistics without ``--update``, tier-1 fails here before CI does.
"""

from __future__ import annotations

import copy
import json

from benchmarks import check_stats as gate


def _table(mean=1.0, p50=0.9, p95=1.5):
    return {
        "Random": {"0.1": {"mean_db": mean, "p50_db": p50, "p95_db": p95}},
        "Proposed": {"0.1": {"mean_db": mean / 2, "p50_db": p50 / 2, "p95_db": p95 / 2}},
    }


class TestCompare:
    def test_identical_tables_pass(self):
        golden = _table()
        assert gate.compare(golden, copy.deepcopy(golden), 0.2) == []

    def test_drift_within_tolerance_passes(self):
        golden = _table()
        session = copy.deepcopy(golden)
        session["Random"]["0.1"]["mean_db"] += 0.19
        assert gate.compare(golden, session, 0.2) == []

    def test_drift_beyond_tolerance_fails(self):
        golden = _table()
        session = copy.deepcopy(golden)
        session["Random"]["0.1"]["mean_db"] += 0.25
        failures = gate.compare(golden, session, 0.2)
        assert len(failures) == 1
        assert "Random rate 0.1 mean_db" in failures[0]

    def test_negative_drift_also_fails(self):
        golden = _table()
        session = copy.deepcopy(golden)
        session["Proposed"]["0.1"]["p95_db"] -= 1.0
        assert len(gate.compare(golden, session, 0.2)) == 1

    def test_missing_scheme_fails(self):
        golden = _table()
        session = copy.deepcopy(golden)
        del session["Proposed"]
        failures = gate.compare(golden, session, 0.2)
        assert any("missing" in f for f in failures)

    def test_missing_rate_fails(self):
        golden = _table()
        session = copy.deepcopy(golden)
        del session["Random"]["0.1"]
        failures = gate.compare(golden, session, 0.2)
        assert any("Random rate 0.1" in f for f in failures)

    def test_missing_stat_fails(self):
        golden = _table()
        session = copy.deepcopy(golden)
        del session["Random"]["0.1"]["p50_db"]
        failures = gate.compare(golden, session, 0.2)
        assert any("p50_db: missing" in f for f in failures)


class TestGoldenFile:
    def test_golden_roundtrip(self, tmp_path):
        path = tmp_path / "golden.json"
        entries = _table()
        gate.write_golden(path, entries)
        assert gate.load_golden(path) == entries
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"] == gate.GOLDEN_VERSION
        assert payload["workload"] == gate.WORKLOAD

    def test_main_update_then_pass_then_inject_fail(self, tmp_path):
        golden = tmp_path / "golden.json"
        assert gate.main(["--update", "--golden", str(golden)]) == 0
        assert gate.main(["--golden", str(golden)]) == 0
        assert (
            gate.main(["--golden", str(golden), "--inject-perturbation", "1.0"]) == 1
        )

    def test_missing_golden_fails(self, tmp_path):
        assert gate.main(["--golden", str(tmp_path / "absent.json")]) == 1


class TestCommittedGolden:
    def test_seeded_stats_match_committed_golden(self):
        """The committed golden must stay in sync with the code's science."""
        session = gate.compute_stats()
        golden = gate.load_golden(gate.DEFAULT_GOLDEN)
        assert gate.compare(golden, session, gate.DEFAULT_TOLERANCE_DB) == []

    def test_compute_stats_is_deterministic(self):
        assert gate.compute_stats() == gate.compute_stats()
