"""Tests for per-UE alignment execution (serial vs batched bit-identity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cell.config import CellConfig
from repro.cell.engine import execute_ues, interference_probability, ue_streams
from repro.cell.scheduler import build_schedule
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import Scenario
from repro.utils.rng import trial_generator


def small_cell(**overrides) -> CellConfig:
    defaults = dict(
        scenario=ScenarioConfig(
            tx_shape=(2, 2), rx_shape=(2, 4), rx_beam_grid=(3, 3), fading_blocks=4
        ),
        num_users=20,
        arrival_rate_hz=5000.0,
        search_rate=0.25,
        probe_budget_per_frame=16,
        interference_coupling=0.2,
        interference_power=2.0,
    )
    defaults.update(overrides)
    return CellConfig(**defaults)


class TestUEStreams:
    def test_ue_is_its_own_trial(self):
        """UE k's streams derive from trial k of the seeding contract."""
        streams = ue_streams(7, 3)
        assert set(streams) == {"channel", "measurement", "algorithm"}
        fresh = trial_generator(7, 3)
        reference = fresh.spawn(3)
        for rng, label in zip(reference, ("channel", "measurement", "algorithm")):
            assert streams[label].random() == rng.random()

    def test_distinct_ues_distinct_draws(self):
        a = ue_streams(7, 0)["channel"].random(4)
        b = ue_streams(7, 1)["channel"].random(4)
        assert not np.any(a == b)


class TestExecuteUEs:
    def _run(self, batch_users):
        config = small_cell()
        schedule = build_schedule(config)
        scenario = Scenario(config.scenario)
        return execute_ues(
            scenario, config, schedule.entries, batch_users=batch_users
        )

    def test_serial_vs_batched_bit_identical(self):
        serial = self._run(None)
        for block in (1, 7, 32):
            batched = self._run(block)
            assert len(batched) == len(serial)
            for s, b in zip(serial, batched):
                assert s == b  # frozen dataclass: exact field equality

    def test_outcomes_in_entry_order(self):
        outcomes = self._run(8)
        assert [o.ue_id for o in outcomes] == list(range(20))
        assert all(np.isfinite(o.loss_db) for o in outcomes)
        assert all(o.measurements_used > 0 for o in outcomes)

    def test_contention_drives_interference(self):
        config = small_cell()
        schedule = build_schedule(config)
        probabilities = [
            interference_probability(config, entry) for entry in schedule.entries
        ]
        assert max(probabilities) > 0.0
        exposed = self._run(None)
        assert sum(o.interference_hits for o in exposed) > 0

    def test_zero_coupling_is_clean(self):
        config = small_cell(interference_coupling=0.0)
        schedule = build_schedule(config)
        outcomes = execute_ues(
            Scenario(config.scenario), config, schedule.entries, batch_users=8
        )
        assert all(o.interference_probability == 0.0 for o in outcomes)
        assert all(o.interference_hits == 0 for o in outcomes)

    def test_subset_execution_matches_full_run(self):
        """A shard's UEs see the same outcomes as in the full run."""
        config = small_cell()
        schedule = build_schedule(config)
        scenario = Scenario(config.scenario)
        full = execute_ues(scenario, config, schedule.entries, batch_users=8)
        part = execute_ues(
            scenario, config, schedule.entries[5:15], batch_users=8
        )
        assert part == full[5:15]

    def test_empty_entries(self):
        config = small_cell()
        assert execute_ues(Scenario(config.scenario), config, []) == []
