"""Edge cases and cross-cutting details not covered elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.codebook import Codebook
from repro.arrays.upa import UniformPlanarArray
from repro.exceptions import (
    BudgetExhaustedError,
    ConfigurationError,
    ConvergenceError,
    ExperimentError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.utils.geometry import Direction


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            ConfigurationError,
            ValidationError,
            ConvergenceError,
            BudgetExhaustedError,
            SimulationError,
            ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ValidationError("boom")


class TestCodebookExplicitVectors:
    def test_accepts_matching_unit_vectors(self):
        array = UniformPlanarArray(2, 2)
        directions = [Direction(0.0), Direction(0.5)]
        from repro.arrays.steering import steering_matrix

        vectors = steering_matrix(array, directions)
        codebook = Codebook(array, directions, (1, 2), vectors=vectors)
        np.testing.assert_allclose(codebook.vectors, vectors)

    def test_rejects_non_unit_vectors(self):
        array = UniformPlanarArray(2, 2)
        directions = [Direction(0.0)]
        with pytest.raises(ValidationError):
            Codebook(array, directions, (1, 1), vectors=np.ones((4, 1), dtype=complex))

    def test_rejects_shape_mismatch(self):
        array = UniformPlanarArray(2, 2)
        with pytest.raises(ValidationError):
            Codebook(array, [Direction(0.0)], (1, 2))

    def test_rejects_empty(self):
        array = UniformPlanarArray(2, 2)
        with pytest.raises(ValidationError):
            Codebook(array, [], (0, 0))


class TestHierarchicalThroughMac:
    def test_wide_beam_probes_in_timeline(self, small_channel, tx_codebook, rx_codebook, rng):
        """Wide-beam (off-codebook) probes appear in the session timeline."""
        from repro.baselines.hierarchical_search import HierarchicalSearch
        from repro.mac.protocol import BeamTrainingSession
        from repro.measurement.measurer import MeasurementEngine

        engine = MeasurementEngine(small_channel, rng, fading_blocks=2)
        session = BeamTrainingSession(tx_codebook, rx_codebook, engine)
        result = session.run(HierarchicalSearch(), search_rate=0.8, rng=rng)
        labels = [e.detail for e in result.timeline if e.kind == "measurement"]
        assert any("wide-beam" in label for label in labels)


class TestCliSinglepath:
    def test_align_singlepath(self, capsys):
        from repro.cli import main

        assert main(["align", "--channel", "singlepath", "--rate", "0.05", "--seed", "2"]) == 0
        assert "Proposed" in capsys.readouterr().out


class TestBuildScenario:
    def test_channel_kinds(self):
        from repro.experiments.common import build_scenario
        from repro.sim.config import ChannelKind

        single = build_scenario(ChannelKind.SINGLEPATH, snr_db=10.0)
        assert single.config.snr_db == 10.0
        multi = build_scenario(ChannelKind.MULTIPATH)
        assert multi.total_pairs == 2304  # 16 x 144, the documented default


class TestDirectionPerturbedEdge:
    def test_elevation_clipping_both_ends(self):
        top = Direction(0.0, np.pi / 2 - 0.01).perturbed(0.0, 1.0)
        assert top.elevation == pytest.approx(np.pi / 2)
        bottom = Direction(0.0, -np.pi / 2 + 0.01).perturbed(0.0, -1.0)
        assert bottom.elevation == pytest.approx(-np.pi / 2)


class TestSolverResultHistory:
    def test_history_matches_objective(self, rng):
        from repro.estimation.ml_covariance import estimate_ml_covariance

        probes = rng.normal(size=(6, 4)) + 1j * rng.normal(size=(6, 4))
        probes /= np.linalg.norm(probes, axis=0)
        powers = np.abs(rng.normal(size=4)) + 0.01
        result = estimate_ml_covariance(probes, powers, 0.01, max_iterations=20)
        assert result.history[-1] == pytest.approx(result.objective)
        assert len(result.history) >= 1
