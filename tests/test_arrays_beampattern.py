"""Tests for beam-pattern analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.beampattern import analyze_pattern, array_factor, pattern_cut_db
from repro.arrays.steering import steering_vector
from repro.arrays.ula import UniformLinearArray
from repro.arrays.upa import UniformPlanarArray
from repro.exceptions import ValidationError
from repro.utils.geometry import Direction


class TestArrayFactor:
    def test_matched_direction_unit_gain(self):
        array = UniformLinearArray(8)
        d = Direction(0.4)
        weights = steering_vector(array, d)
        response = array_factor(array, weights, [d])
        assert abs(response[0]) == pytest.approx(1.0)

    def test_gain_bounded_by_one(self):
        array = UniformPlanarArray(4, 4)
        weights = steering_vector(array, Direction(0.2, 0.1))
        directions = [Direction(float(a)) for a in np.linspace(-1.3, 1.3, 21)]
        gains = np.abs(array_factor(array, weights, directions)) ** 2
        assert np.all(gains <= 1.0 + 1e-12)

    def test_weight_shape_validation(self):
        array = UniformLinearArray(4)
        with pytest.raises(ValidationError):
            array_factor(array, np.ones(3), [Direction(0.0)])


class TestPatternCut:
    def test_floor_applied(self):
        array = UniformLinearArray(8)
        weights = steering_vector(array, Direction(0.0))
        cut = pattern_cut_db(array, weights, np.linspace(-1.5, 1.5, 101), floor_db=-60.0)
        assert np.all(cut >= -60.0 - 1e-9)

    def test_peak_at_steering_angle(self):
        array = UniformLinearArray(16)
        target = 0.35
        weights = steering_vector(array, Direction(target))
        azimuths = np.linspace(-1.5, 1.5, 3001)
        cut = pattern_cut_db(array, weights, azimuths)
        assert azimuths[int(np.argmax(cut))] == pytest.approx(target, abs=0.01)


class TestAnalyzePattern:
    def test_beamwidth_shrinks_with_aperture(self):
        small = UniformLinearArray(4)
        large = UniformLinearArray(16)
        bw_small = analyze_pattern(small, steering_vector(small, Direction(0.0))).half_power_beamwidth
        bw_large = analyze_pattern(large, steering_vector(large, Direction(0.0))).half_power_beamwidth
        assert bw_large < bw_small

    def test_hpbw_close_to_theory(self):
        """Broadside half-wavelength ULA: HPBW ~ 0.886 * 2 / N radians."""
        n = 16
        array = UniformLinearArray(n)
        stats = analyze_pattern(array, steering_vector(array, Direction(0.0)))
        assert stats.half_power_beamwidth == pytest.approx(0.886 * 2 / n, rel=0.15)

    def test_sidelobe_level_ula(self):
        """Uniform ULA first sidelobe sits near -13.3 dB."""
        array = UniformLinearArray(16)
        stats = analyze_pattern(array, steering_vector(array, Direction(0.0)))
        assert stats.peak_sidelobe_db == pytest.approx(-13.3, abs=1.0)

    def test_peak_location(self):
        array = UniformLinearArray(12)
        stats = analyze_pattern(array, steering_vector(array, Direction(0.5)))
        assert stats.peak_azimuth == pytest.approx(0.5, abs=0.01)

    def test_wide_beam_is_wider(self):
        """Hierarchical sub-array wide beams trade gain for beamwidth."""
        from repro.arrays.codebook import Codebook
        from repro.arrays.hierarchical import HierarchicalCodebook

        base = Codebook.for_array(UniformLinearArray(8))
        tree = HierarchicalCodebook(base)
        wide = tree.level(2)[1]  # covers a quarter of the sector
        narrow = base.beam(2)
        bw_wide = analyze_pattern(base.array, wide.vector).half_power_beamwidth
        bw_narrow = analyze_pattern(base.array, narrow).half_power_beamwidth
        assert bw_wide > bw_narrow

    def test_resolution_validation(self):
        array = UniformLinearArray(4)
        with pytest.raises(ValidationError):
            analyze_pattern(array, steering_vector(array, Direction(0.0)), resolution=4)
