"""Tests for the LS+nuclear and back-projection estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation.likelihood import expected_powers
from repro.estimation.ls_covariance import LsCovarianceEstimator
from repro.estimation.sample_covariance import BackProjectionEstimator
from repro.mc.operators import QuadraticFormOperator
from repro.utils.linalg import dominant_eigenvector, random_psd


def _setup(rng, n=8, m=128, rank=1, noise=0.01, exact=False):
    probes = rng.normal(size=(n, m)) + 1j * rng.normal(size=(n, m))
    probes /= np.linalg.norm(probes, axis=0)
    operator = QuadraticFormOperator(probes)
    truth = random_psd(n, rank, rng, scale=float(n))
    lambdas = expected_powers(truth, operator, noise)
    powers = lambdas if exact else lambdas * rng.exponential(size=m)
    return probes, truth, np.asarray(powers)


class TestLsEstimator:
    def test_psd_output(self, rng):
        probes, _, powers = _setup(rng)
        estimate = LsCovarianceEstimator().estimate(probes, powers, 0.01)
        assert np.min(np.linalg.eigvalsh(estimate)) >= -1e-9

    def test_exact_measurements_recover_direction(self, rng):
        probes, truth, powers = _setup(rng, exact=True)
        estimate = LsCovarianceEstimator(mu=1e-4).estimate(probes, powers, 0.01)
        overlap = abs(
            np.vdot(dominant_eigenvector(truth), dominant_eigenvector(estimate))
        )
        assert overlap > 0.95

    def test_warm_start_tracked(self, rng):
        probes, _, powers = _setup(rng, m=10)
        estimator = LsCovarianceEstimator()
        estimator.estimate(probes, powers, 0.01)
        assert estimator.warm_start is not None
        estimator.reset()
        assert estimator.warm_start is None


class TestBackProjection:
    def test_psd_output(self, rng):
        probes, _, powers = _setup(rng)
        estimate = BackProjectionEstimator().estimate(probes, powers, 0.01)
        assert np.min(np.linalg.eigvalsh(estimate)) >= -1e-9

    def test_direction_recovery_exact(self, rng):
        probes, truth, powers = _setup(rng, m=256, exact=True)
        estimate = BackProjectionEstimator().estimate(probes, powers, 0.01)
        overlap = abs(
            np.vdot(dominant_eigenvector(truth), dominant_eigenvector(estimate))
        )
        assert overlap > 0.85

    def test_rank_truncation(self, rng):
        probes, _, powers = _setup(rng, rank=3)
        estimate = BackProjectionEstimator(rank=2).estimate(probes, powers, 0.01)
        values = np.linalg.eigvalsh(estimate)
        assert np.sum(values > 1e-9 * max(values.max(), 1e-30)) <= 2

    def test_noise_debiasing(self, rng):
        """Pure-noise powers map to a (nearly) zero estimate."""
        n, m, noise = 6, 40, 0.02
        probes = rng.normal(size=(n, m)) + 1j * rng.normal(size=(n, m))
        probes /= np.linalg.norm(probes, axis=0)
        powers = np.full(m, noise)  # exactly the floor
        estimate = BackProjectionEstimator().estimate(probes, powers, noise)
        assert float(np.real(np.trace(estimate))) < 1e-9
