"""Batched trial engine suite: bit-identity, masking, and fallbacks.

The batched engine (:mod:`repro.sim.batch` and the stacked kernels under
it) is admissible for the same reason the hot-path caches are: it is
*exact*. With a fixed seed, every outcome — down to the raw measurement
samples and the solver's per-iteration history — must be bit-identical
whether trials run serially, in one stacked block, or across worker
processes composed with in-process batches. This module pins those
guarantees down layer by layer: measurement fusion, the lockstep ML
solver (including partial-batch convergence masking and the
gufunc-absent fallback), the stacked SVT/soft-threshold kernels, and the
batched channel builder.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.estimation.batch as estimation_batch
from repro.channel.batch import mean_snr_matrices
from repro.core.base import AlignmentContext
from repro.estimation.batch import (
    estimate_ml_covariance_batch,
    soft_threshold_eigenvalues_batch,
)
from repro.estimation.ml_covariance import _soft_threshold_hot, estimate_ml_covariance
from repro.exceptions import (
    BudgetExhaustedError,
    ConfigurationError,
    ValidationError,
)
from repro.mc.alm import soft_threshold_entries
from repro.mc.svt import shrink_singular_values, shrink_singular_values_batch
from repro.measurement.budget import MeasurementBudget
from repro.measurement.measurer import MeasurementEngine
from repro.sim.batch import run_trial_block, run_trials_batched
from repro.sim.parallel import SchemeSpec, run_trials_parallel
from repro.sim.runner import run_trials, standard_schemes
from repro.types import BeamPair
from repro.utils.linalg import random_psd
from repro.utils.rng import trial_generator
from repro.xp import active_backend

#: Bit-exact batch-vs-serial equality (and reference workspace internals)
#: is only promised by exact tiers (``backend.exact``); accelerated tiers
#: are gated statistically instead (benchmarks/check_stats.py). Under the
#: default numpy tier this marker never skips anything.
requires_exact = pytest.mark.skipif(
    not active_backend().exact,
    reason="needs a bit-exact backend tier (accelerated tiers are gated statistically)",
)


def _deep_fingerprint(trials):
    """Every outcome field plus the raw measurement trace, byte for byte."""
    rows = []
    for trial in trials:
        for name, outcome in trial.items():
            result = outcome.result
            rows.append(
                (
                    name,
                    outcome.loss_db,
                    result.selected,
                    result.measurements_used,
                    result.selected_power,
                    [(m.pair, m.power, m.z) for m in result.trace],
                )
            )
    return rows


def _parallel_fingerprint(trials):
    return [
        (name, outcome.loss_db, outcome.selected, outcome.measurements_used)
        for trial in trials
        for name, outcome in trial.items()
    ]


def _probe_problems(batch, dimension=12, measurements=5, seed=31):
    """Independent (probes, powers) ML problems with unit-norm probes."""
    rng = np.random.default_rng(seed)
    problems = []
    for _ in range(batch):
        probes = rng.normal(size=(dimension, measurements)) + 1j * rng.normal(
            size=(dimension, measurements)
        )
        probes /= np.linalg.norm(probes, axis=0, keepdims=True)
        powers = np.abs(rng.normal(size=measurements)) * 0.1 + 0.01
        problems.append((probes, powers))
    return problems


def _solver_fingerprint(result):
    """Everything a SolverResult carries, hashable and byte-exact."""
    eig = None
    if result.solution_eig is not None:
        values, vectors = result.solution_eig
        eig = (values.tobytes(), vectors.tobytes())
    return (
        result.solution.tobytes(),
        result.iterations,
        result.converged,
        result.objective,
        tuple(result.history),
        eig,
    )


# ----------------------------------------------------------------------
# End-to-end: batched trials vs the serial runner
# ----------------------------------------------------------------------


class TestRunTrialsBatched:
    @pytest.mark.parametrize("batch_size", [1, 8, 32])
    @requires_exact
    def test_bit_identical_to_serial(self, small_scenario, batch_size):
        serial = run_trials(
            small_scenario, standard_schemes(measurements_per_slot=4), 0.3, 7,
            base_seed=41,
        )
        batched = run_trials_batched(
            small_scenario,
            standard_schemes(measurements_per_slot=4),
            0.3,
            7,
            base_seed=41,
            batch_size=batch_size,
        )
        assert _deep_fingerprint(batched) == _deep_fingerprint(serial)

    @requires_exact
    def test_block_matches_serial_per_trial(self, small_scenario):
        schemes = standard_schemes(measurements_per_slot=4)
        block = run_trial_block(
            small_scenario,
            schemes,
            0.3,
            [trial_generator(43, k) for k in range(3)],
        )
        serial = run_trials(
            small_scenario, standard_schemes(measurements_per_slot=4), 0.3, 3,
            base_seed=43,
        )
        assert _deep_fingerprint(block) == _deep_fingerprint(serial)

    def test_empty_block_is_empty(self, small_scenario):
        assert run_trial_block(
            small_scenario, standard_schemes(measurements_per_slot=4), 0.3, []
        ) == []

    def test_no_schemes_rejected(self, small_scenario):
        with pytest.raises(ConfigurationError):
            run_trial_block(small_scenario, {}, 0.3, [trial_generator(0, 0)])

    def test_validation(self, small_scenario):
        schemes = standard_schemes(measurements_per_slot=4)
        with pytest.raises(ConfigurationError):
            run_trials_batched(small_scenario, schemes, 0.3, 0)
        with pytest.raises(ConfigurationError):
            run_trials_batched(small_scenario, schemes, 0.3, 2, batch_size=0)

    @requires_exact
    def test_parallel_composes_with_batching(self, small_config):
        specs = (
            SchemeSpec.of("Random"),
            SchemeSpec.of("Scan"),
            SchemeSpec.of("Proposed", measurements_per_slot=4),
        )
        reference = run_trials_parallel(
            small_config, specs, 0.3, 5, base_seed=47, max_workers=1
        )
        composed = run_trials_parallel(
            small_config,
            specs,
            0.3,
            5,
            base_seed=47,
            max_workers=2,
            batch_trials=2,
        )
        assert _parallel_fingerprint(composed) == _parallel_fingerprint(reference)

    def test_parallel_batch_trials_validation(self, small_config):
        with pytest.raises(ConfigurationError):
            run_trials_parallel(
                small_config,
                (SchemeSpec.of("Random"),),
                0.3,
                2,
                max_workers=1,
                batch_trials=0,
            )


# ----------------------------------------------------------------------
# Measurement fusion
# ----------------------------------------------------------------------


class TestMeasurePairs:
    def _pairs(self, count=6):
        # Stays inside the fixtures' 4 TX x 18 RX codebooks.
        return [BeamPair(index % 4, index + 1) for index in range(count)]

    @requires_exact
    def test_fused_matches_loop_and_stream_position(
        self, small_channel, tx_codebook, rx_codebook
    ):
        """Fused draws are bitwise the loop's, and leave the RNG in the
        exact same stream position (nothing downstream can diverge)."""
        pairs = self._pairs()
        fused_engine = MeasurementEngine(
            small_channel, np.random.default_rng(5), fading_blocks=4
        )
        loop_engine = MeasurementEngine(
            small_channel, np.random.default_rng(5), fading_blocks=4
        )
        fused = fused_engine.measure_pairs(tx_codebook, rx_codebook, pairs)
        looped = [
            loop_engine.measure_pair(tx_codebook, rx_codebook, pair) for pair in pairs
        ]
        assert [(m.pair, m.power, m.z) for m in fused] == [
            (m.pair, m.power, m.z) for m in looped
        ]
        assert fused_engine._rng.standard_normal() == loop_engine._rng.standard_normal()

    def test_empty_pairs(self, engine, tx_codebook, rx_codebook):
        assert engine.measure_pairs(tx_codebook, rx_codebook, []) == []

    def test_interference_falls_back_to_loop(
        self, small_channel, tx_codebook, rx_codebook
    ):
        """With interference the dwells draw data-dependently, so the
        fused path must route through the per-pair loop — still matching
        a hand-rolled loop draw for draw."""
        pairs = self._pairs()
        kwargs = dict(
            fading_blocks=4, interference_probability=0.5, interference_power=1.0
        )
        fused_engine = MeasurementEngine(
            small_channel, np.random.default_rng(9), **kwargs
        )
        loop_engine = MeasurementEngine(
            small_channel, np.random.default_rng(9), **kwargs
        )
        fused = fused_engine.measure_pairs(tx_codebook, rx_codebook, pairs)
        looped = [
            loop_engine.measure_pair(tx_codebook, rx_codebook, pair) for pair in pairs
        ]
        assert [(m.power, m.z) for m in fused] == [(m.power, m.z) for m in looped]
        assert fused_engine.interference_hits == loop_engine.interference_hits


class TestMeasureMany:
    def _context(self, tx_codebook, rx_codebook, engine, rate=0.5):
        total = tx_codebook.num_beams * rx_codebook.num_beams
        budget = MeasurementBudget.from_search_rate(total, rate)
        return AlignmentContext(tx_codebook, rx_codebook, engine, budget)

    def test_records_like_measure(self, tx_codebook, rx_codebook, engine):
        context = self._context(tx_codebook, rx_codebook, engine)
        pairs = [BeamPair(0, 0), BeamPair(1, 3), BeamPair(2, 7)]
        measurements = context.measure_many(pairs, slot=2)
        assert [m.pair for m in measurements] == pairs
        assert context.num_measurements == len(pairs)
        assert [m.pair for m in context.trace] == pairs
        for pair in pairs:
            assert context.is_measured(pair)

    def test_duplicate_pairs_rejected(self, tx_codebook, rx_codebook, engine):
        context = self._context(tx_codebook, rx_codebook, engine)
        with pytest.raises(ValidationError):
            context.measure_many([BeamPair(0, 0), BeamPair(0, 0)])

    def test_already_measured_rejected(self, tx_codebook, rx_codebook, engine):
        context = self._context(tx_codebook, rx_codebook, engine)
        context.measure(BeamPair(1, 1))
        with pytest.raises(ValidationError):
            context.measure_many([BeamPair(0, 0), BeamPair(1, 1)])

    def test_budget_charged_before_any_measurement(
        self, tx_codebook, rx_codebook, engine
    ):
        """An oversized batch raises before a single dwell happens."""
        total = tx_codebook.num_beams * rx_codebook.num_beams
        budget = MeasurementBudget(total_pairs=total, limit=2)
        context = AlignmentContext(tx_codebook, rx_codebook, engine, budget)
        with pytest.raises(BudgetExhaustedError):
            context.measure_many([BeamPair(0, 0), BeamPair(1, 1), BeamPair(2, 2)])
        assert context.num_measurements == 0
        assert context.trace == []
        assert not context.is_measured(BeamPair(0, 0))

    def test_empty_batch(self, tx_codebook, rx_codebook, engine):
        context = self._context(tx_codebook, rx_codebook, engine)
        assert context.measure_many([]) == []
        assert context.num_measurements == 0


# ----------------------------------------------------------------------
# Lockstep batched ML solver
# ----------------------------------------------------------------------


class TestBatchedMlSolver:
    @requires_exact
    def test_bit_identical_to_serial(self):
        problems = _probe_problems(6)
        probes = np.stack([p for p, _ in problems])
        powers = np.stack([w for _, w in problems])
        batched = estimate_ml_covariance_batch(probes, powers, 0.01)
        for (probe, power), result in zip(problems, batched):
            serial = estimate_ml_covariance(probe, power, 0.01)
            assert _solver_fingerprint(result) == _solver_fingerprint(serial)

    @requires_exact
    def test_partial_batch_convergence_masking(self):
        """A batch where problems converge at different iterations must
        leave each problem's trajectory untouched by its neighbours."""
        problems = _probe_problems(4, seed=37)
        probes = np.stack([p for p, _ in problems])
        powers = np.stack([w for _, w in problems])
        # A loose tolerance for a quick-converging mix; per-problem
        # iteration counts then genuinely differ inside one batch.
        batched = estimate_ml_covariance_batch(probes, powers, 0.01, tolerance=5e-3)
        iteration_counts = {result.iterations for result in batched}
        assert len(iteration_counts) > 1, "fixture no longer mixes convergence"
        for (probe, power), result in zip(problems, batched):
            serial = estimate_ml_covariance(probe, power, 0.01, tolerance=5e-3)
            assert _solver_fingerprint(result) == _solver_fingerprint(serial)

    @requires_exact
    def test_gufunc_absent_fallback(self, monkeypatch):
        """Without the numpy-internal eigh gufunc the public stacked
        ``np.linalg.eigh`` takes over, bit-identically."""
        problems = _probe_problems(3, seed=41)
        probes = np.stack([p for p, _ in problems])
        powers = np.stack([w for _, w in problems])
        expected = estimate_ml_covariance_batch(probes, powers, 0.01)
        monkeypatch.setattr(estimation_batch, "_EIGH_LOWER", None)
        fallback = estimate_ml_covariance_batch(probes, powers, 0.01)
        assert [_solver_fingerprint(r) for r in fallback] == [
            _solver_fingerprint(r) for r in expected
        ]

    @requires_exact
    def test_warm_start_matches_serial(self):
        problems = _probe_problems(3, seed=43)
        probes = np.stack([p for p, _ in problems])
        powers = np.stack([w for _, w in problems])
        initials = [
            random_psd(probes.shape[1], 3, np.random.default_rng(100 + k))
            for k in range(3)
        ]
        batched = estimate_ml_covariance_batch(
            probes, powers, 0.01, initials=initials
        )
        for (probe, power), initial, result in zip(problems, initials, batched):
            serial = estimate_ml_covariance(probe, power, 0.01, initial=initial)
            assert _solver_fingerprint(result) == _solver_fingerprint(serial)

    def test_validation(self):
        probes = np.zeros((2, 4, 3), dtype=complex)
        powers = np.full((2, 3), 0.1)
        with pytest.raises(ValidationError):
            estimate_ml_covariance_batch(probes[0], powers[0], 0.01)
        with pytest.raises(ValidationError):
            estimate_ml_covariance_batch(probes, powers[:1], 0.01)
        with pytest.raises(ValidationError):
            estimate_ml_covariance_batch(probes, -powers - 1.0, 0.01)
        with pytest.raises(ValidationError):
            estimate_ml_covariance_batch(probes, powers, 0.01, initials=[None])


# ----------------------------------------------------------------------
# Stacked kernels
# ----------------------------------------------------------------------


class TestStackedKernels:
    def _psd_stack(self, batch=5, size=8, seed=51):
        rng = np.random.default_rng(seed)
        return np.stack([random_psd(size, 3, rng) for _ in range(batch)])

    @requires_exact
    def test_eigenvalue_prox_matches_hot_path(self):
        matrices = self._psd_stack()
        thresholds = np.linspace(0.01, 0.2, matrices.shape[0])
        stacked = soft_threshold_eigenvalues_batch(matrices, thresholds)
        for index in range(matrices.shape[0]):
            serial = _soft_threshold_hot(matrices[index], float(thresholds[index]))
            assert stacked[index].tobytes() == serial.tobytes()

    @requires_exact
    def test_eigenvalue_prox_scalar_threshold(self):
        matrices = self._psd_stack()
        stacked = soft_threshold_eigenvalues_batch(matrices, 0.05)
        for index in range(matrices.shape[0]):
            serial = _soft_threshold_hot(matrices[index], 0.05)
            assert stacked[index].tobytes() == serial.tobytes()

    @requires_exact
    def test_svt_shrink_matches_serial(self):
        rng = np.random.default_rng(53)
        matrices = rng.normal(size=(4, 6, 5)) + 1j * rng.normal(size=(4, 6, 5))
        thresholds = np.array([0.1, 0.5, 1.0, 1e6])  # last slice fully shrunk
        stacked = shrink_singular_values_batch(matrices, thresholds)
        for index in range(matrices.shape[0]):
            serial = shrink_singular_values(matrices[index], float(thresholds[index]))
            assert stacked[index].tobytes() == serial.tobytes()
        assert np.all(stacked[-1] == 0.0)

    def test_svt_shrink_validation(self):
        with pytest.raises(ValidationError):
            shrink_singular_values_batch(np.zeros((3, 3)), 0.1)
        with pytest.raises(ValidationError):
            shrink_singular_values_batch(np.zeros((2, 3, 3)), -0.1)

    @requires_exact
    def test_soft_threshold_entries_buffers_match_plain(self):
        rng = np.random.default_rng(57)
        matrix = rng.normal(size=(12, 9)) + 1j * rng.normal(size=(12, 9))
        plain = soft_threshold_entries(matrix, 0.7)
        workspace: dict = {}
        out = np.empty_like(matrix)
        fused = soft_threshold_entries(matrix, 0.7, workspace=workspace, out=out)
        assert fused is out
        assert fused.tobytes() == plain.tobytes()
        # Reference semantics, including signed zeros from np.where.
        magnitude = np.abs(matrix)
        scale = np.where(
            magnitude <= 0.7, 0.0, (magnitude - 0.7) / np.maximum(magnitude, 1e-30)
        )
        assert plain.tobytes() == (matrix * scale).tobytes()
        # The workspace is reused, not regrown, on the next call.
        buffers = {key: id(value) for key, value in workspace.items()}
        soft_threshold_entries(matrix, 0.3, workspace=workspace, out=out)
        assert buffers == {key: id(value) for key, value in workspace.items()}

    def test_soft_threshold_entries_out_validation(self):
        matrix = np.ones((3, 3), dtype=complex)
        with pytest.raises(ValidationError):
            soft_threshold_entries(matrix, 0.1, out=np.empty((2, 2), dtype=complex))


# ----------------------------------------------------------------------
# Batched channel builder
# ----------------------------------------------------------------------


class TestChannelBatch:
    @requires_exact
    def test_batch_realizations_match_serial(self, small_scenario):
        batched = small_scenario.sample_channel_batch(
            [trial_generator(61, k) for k in range(5)]
        )
        serial = [
            small_scenario.sample_channel(trial_generator(61, k)) for k in range(5)
        ]
        for left, right in zip(batched, serial):
            assert left.tx_steering.tobytes() == right.tx_steering.tobytes()
            assert left.rx_steering.tobytes() == right.rx_steering.tobytes()
            assert left.powers.tobytes() == right.powers.tobytes()

    @requires_exact
    def test_mean_snr_matrices_match_serial(self, small_scenario):
        channels = small_scenario.sample_channel_batch(
            [trial_generator(67, k) for k in range(4)]
        )
        context = small_scenario.context()
        stacked = mean_snr_matrices(
            channels, context.tx_codebook, context.rx_codebook
        )
        for channel, matrix in zip(channels, stacked):
            serial = channel.mean_snr_matrix(context.tx_codebook, context.rx_codebook)
            assert matrix.tobytes() == serial.tobytes()
