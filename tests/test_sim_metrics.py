"""Tests for evaluation metrics (Eq. 31-32)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.sim.metrics import evaluate_pair, loss_from_matrix_db, snr_loss_db
from repro.types import BeamPair


class TestLossFromMatrix:
    def test_optimal_pair_zero_loss(self):
        matrix = np.array([[1.0, 2.0], [4.0, 3.0]])
        assert loss_from_matrix_db(matrix, BeamPair(1, 0)) == 0.0

    def test_half_power_three_db(self):
        matrix = np.array([[2.0, 1.0]])
        assert loss_from_matrix_db(matrix, BeamPair(0, 1)) == pytest.approx(3.0103, abs=1e-3)

    def test_zero_power_infinite_loss(self):
        matrix = np.array([[1.0, 0.0]])
        assert loss_from_matrix_db(matrix, BeamPair(0, 1)) == np.inf

    def test_nonnegative(self, rng):
        matrix = np.abs(rng.normal(size=(4, 6))) + 0.01
        for _ in range(10):
            pair = BeamPair(int(rng.integers(4)), int(rng.integers(6)))
            assert loss_from_matrix_db(matrix, pair) >= 0.0

    def test_all_zero_matrix_rejected(self):
        with pytest.raises(ValidationError):
            loss_from_matrix_db(np.zeros((2, 2)), BeamPair(0, 0))

    def test_non_2d_rejected(self):
        with pytest.raises(ValidationError):
            loss_from_matrix_db(np.ones(4), BeamPair(0, 0))


class TestEvaluatePair:
    def test_fields(self):
        matrix = np.array([[1.0, 4.0], [2.0, 3.0]])
        evaluation = evaluate_pair(matrix, BeamPair(1, 1))
        assert evaluation.mean_snr == 3.0
        assert evaluation.optimal_snr == 4.0
        assert evaluation.loss_db == pytest.approx(10 * np.log10(4 / 3))


class TestSnrLossDb:
    def test_consistent_with_matrix(self, small_channel, tx_codebook, rx_codebook):
        matrix = small_channel.mean_snr_matrix(tx_codebook, rx_codebook)
        pair = BeamPair(1, 4)
        assert snr_loss_db(small_channel, tx_codebook, rx_codebook, pair) == pytest.approx(
            loss_from_matrix_db(matrix, pair)
        )

    def test_genie_pair_zero(self, small_channel, tx_codebook, rx_codebook):
        tx_i, rx_i, _ = small_channel.optimal_pair(tx_codebook, rx_codebook)
        assert snr_loss_db(
            small_channel, tx_codebook, rx_codebook, BeamPair(tx_i, rx_i)
        ) == pytest.approx(0.0)
