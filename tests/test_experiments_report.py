"""Tests for the combined report generator."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.report import collect_results, render_report
from repro.utils.serialization import dump


@pytest.fixture
def results_dir(tmp_path: Path) -> Path:
    dump(
        {
            "id": "fig5",
            "title": "Figure 5",
            "data": {
                "search_rates": [0.1, 0.2],
                "mean_loss_db": {"Random": [5.0, 3.0], "Proposed": [3.0, 2.0]},
            },
        },
        tmp_path / "fig5.json",
    )
    dump(
        {
            "id": "fig7",
            "title": "Figure 7",
            "data": {
                "target_losses_db": [1.0, 3.0],
                "required_rates": {"Random": [0.5, 0.2], "Proposed": [0.3, 0.1]},
            },
        },
        tmp_path / "fig7.json",
    )
    dump({"unrelated": True}, tmp_path / "other.json")
    (tmp_path / "garbage.json").write_text("not json at all", encoding="utf-8")
    return tmp_path


class TestCollectResults:
    def test_collects_known_ids_only(self, results_dir):
        results = collect_results(results_dir)
        assert set(results) == {"fig5", "fig7"}

    def test_rejects_non_directory(self, tmp_path):
        with pytest.raises(ExperimentError):
            collect_results(tmp_path / "nope")


class TestRenderReport:
    def test_contains_sections_and_tables(self, results_dir):
        text = render_report(collect_results(results_dir))
        assert "## Figure 5" in text
        assert "## Figure 7" in text
        assert "| Proposed | 3.00 | 2.00 |" in text
        assert "required rate @ target" in text

    def test_empty_results(self):
        assert "No experiment results" in render_report({})


class TestCliReport:
    def test_report_to_stdout(self, results_dir, capsys):
        from repro.cli import main

        assert main(["report", str(results_dir)]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_report_to_file(self, results_dir, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main(["report", str(results_dir), "--out", str(out)]) == 0
        assert "Figure 5" in out.read_text()
