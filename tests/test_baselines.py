"""Tests for the baseline beam-alignment schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exhaustive import ExhaustiveSearch
from repro.baselines.genie import GenieAligner
from repro.baselines.hierarchical_search import HierarchicalSearch
from repro.baselines.local_refine import LocalRefineSearch
from repro.baselines.random_search import RandomSearch
from repro.baselines.scan_search import ScanSearch, pair_scan_path
from repro.core.base import AlignmentContext
from repro.exceptions import ConfigurationError
from repro.measurement.budget import MeasurementBudget
from repro.measurement.measurer import MeasurementEngine
from repro.sim.metrics import loss_from_matrix_db
from repro.types import BeamPair


def _context(small_channel, tx_codebook, rx_codebook, rng, limit):
    engine = MeasurementEngine(small_channel, rng, fading_blocks=4)
    budget = MeasurementBudget(
        total_pairs=tx_codebook.num_beams * rx_codebook.num_beams, limit=limit
    )
    return AlignmentContext(tx_codebook, rx_codebook, engine, budget)


class TestRandomSearch:
    def test_spends_exact_budget(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 25)
        result = RandomSearch().align(context, rng)
        assert result.measurements_used == 25
        assert result.algorithm == "Random"

    def test_distinct_pairs(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 40)
        result = RandomSearch().align(context, rng)
        pairs = [m.pair for m in result.trace]
        assert len(set(pairs)) == 40

    def test_full_budget_covers_everything(
        self, small_channel, tx_codebook, rx_codebook, rng
    ):
        total = tx_codebook.num_beams * rx_codebook.num_beams
        context = _context(small_channel, tx_codebook, rx_codebook, rng, total)
        result = RandomSearch().align(context, rng)
        assert len(result.measured_pairs()) == total


class TestScanSearch:
    def test_spends_exact_budget(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 30)
        result = ScanSearch().align(context, rng)
        assert result.measurements_used == 30

    def test_adjacent_hops(self, small_channel, tx_codebook, rx_codebook, rng):
        """Consecutive scan pairs advance both snake walks by one step."""
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 20)
        result = ScanSearch().align(context, rng)
        tx_path = tx_codebook.snake_order(0)
        rx_path = rx_codebook.snake_order(0)
        pairs = [m.pair for m in result.trace]
        tx_positions = [tx_path.index(p.tx_index) for p in pairs]
        rx_positions = [rx_path.index(p.rx_index) for p in pairs]
        n_tx, n_rx = len(tx_path), len(rx_path)
        for a, b in zip(tx_positions, tx_positions[1:]):
            assert (b - a) % n_tx == 1
        for a, b in zip(rx_positions, rx_positions[1:]):
            assert (b - a) % n_rx == 1

    def test_no_repeats_past_cycle(self, small_channel, tx_codebook, rx_codebook, rng):
        """Budget beyond lcm(|U|, |V|) still yields distinct pairs."""
        limit = 60  # lcm(4, 18) = 36 < 60
        context = _context(small_channel, tx_codebook, rx_codebook, rng, limit)
        result = ScanSearch().align(context, rng)
        pairs = [m.pair for m in result.trace]
        assert len(set(pairs)) == limit

    def test_pair_scan_path_covers_product(self):
        path = pair_scan_path([0, 1], [0, 1, 2])
        assert len(path) == 6
        assert len(set(path)) == 6


class TestExhaustiveSearch:
    def test_requires_full_budget(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 10)
        with pytest.raises(ConfigurationError):
            ExhaustiveSearch().align(context, rng)

    def test_measures_all_pairs(self, small_channel, tx_codebook, rx_codebook, rng):
        total = tx_codebook.num_beams * rx_codebook.num_beams
        context = _context(small_channel, tx_codebook, rx_codebook, rng, total)
        result = ExhaustiveSearch().align(context, rng)
        assert result.measurements_used == total

    def test_near_optimal_with_averaging(self, small_channel, tx_codebook, rx_codebook):
        """With long dwells, exhaustive search nails the true optimum."""
        total = tx_codebook.num_beams * rx_codebook.num_beams
        engine = MeasurementEngine(
            small_channel, np.random.default_rng(0), fading_blocks=400
        )
        context = AlignmentContext(
            tx_codebook,
            rx_codebook,
            engine,
            MeasurementBudget(total_pairs=total, limit=total),
        )
        result = ExhaustiveSearch().align(context, np.random.default_rng(1))
        snr = small_channel.mean_snr_matrix(tx_codebook, rx_codebook)
        assert loss_from_matrix_db(snr, result.selected) < 1.0


class TestGenie:
    def test_selects_true_optimum(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 5)
        result = GenieAligner(small_channel).align(context, rng)
        snr = small_channel.mean_snr_matrix(tx_codebook, rx_codebook)
        assert loss_from_matrix_db(snr, result.selected) == pytest.approx(0.0)

    def test_single_measurement(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 5)
        result = GenieAligner(small_channel).align(context, rng)
        assert result.measurements_used == 1


class TestHierarchicalSearch:
    def test_runs_within_budget(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 60)
        result = HierarchicalSearch().align(context, rng)
        assert result.measurements_used <= 60
        assert result.selected is not None

    def test_reasonable_outcome_at_high_snr(
        self, small_channel, tx_codebook, rx_codebook
    ):
        """With long dwells the descent should land near the optimum."""
        total = tx_codebook.num_beams * rx_codebook.num_beams
        engine = MeasurementEngine(
            small_channel, np.random.default_rng(2), fading_blocks=200
        )
        context = AlignmentContext(
            tx_codebook,
            rx_codebook,
            engine,
            MeasurementBudget(total_pairs=total, limit=total),
        )
        result = HierarchicalSearch().align(context, np.random.default_rng(3))
        snr = small_channel.mean_snr_matrix(tx_codebook, rx_codebook)
        assert loss_from_matrix_db(snr, result.selected) < 10.0

    def test_uses_fewer_measurements_than_exhaustive(
        self, small_channel, tx_codebook, rx_codebook, rng
    ):
        total = tx_codebook.num_beams * rx_codebook.num_beams
        context = _context(small_channel, tx_codebook, rx_codebook, rng, total)
        result = HierarchicalSearch().align(context, rng)
        assert result.measurements_used < total


class TestLocalRefine:
    def test_spends_budget(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 30)
        result = LocalRefineSearch().align(context, rng)
        assert result.measurements_used == 30

    def test_coarse_fraction_validation(self):
        with pytest.raises(Exception):
            LocalRefineSearch(coarse_fraction=1.5)

    def test_distinct_pairs(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, 50)
        result = LocalRefineSearch().align(context, rng)
        pairs = [m.pair for m in result.trace]
        assert len(set(pairs)) == len(pairs)

    def test_full_budget(self, small_channel, tx_codebook, rx_codebook, rng):
        total = tx_codebook.num_beams * rx_codebook.num_beams
        context = _context(small_channel, tx_codebook, rx_codebook, rng, total)
        result = LocalRefineSearch().align(context, rng)
        assert result.measurements_used == total
