"""Tests for repro.utils.geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.utils.geometry import (
    Direction,
    angle_distance,
    angular_separation,
    direction_cosines,
    uniform_angle_grid,
    uniform_sine_grid,
    wrap_angle,
)


class TestDirection:
    def test_basic_construction(self):
        d = Direction(azimuth=0.5, elevation=-0.2)
        assert d.azimuth == 0.5
        assert d.elevation == -0.2

    def test_default_elevation(self):
        assert Direction(azimuth=1.0).elevation == 0.0

    def test_rejects_bad_azimuth(self):
        with pytest.raises(ValidationError):
            Direction(azimuth=4.0)

    def test_rejects_bad_elevation(self):
        with pytest.raises(ValidationError):
            Direction(azimuth=0.0, elevation=2.0)

    def test_cosines(self):
        u, v = Direction(azimuth=np.pi / 2, elevation=0.0).cosines
        assert u == pytest.approx(1.0)
        assert v == pytest.approx(0.0)

    def test_cosines_elevation(self):
        u, v = Direction(azimuth=0.0, elevation=np.pi / 2).cosines
        assert u == pytest.approx(0.0, abs=1e-12)
        assert v == pytest.approx(1.0)

    def test_perturbed_wraps(self):
        d = Direction(azimuth=np.pi - 0.1).perturbed(0.3)
        assert -np.pi <= d.azimuth <= np.pi

    def test_perturbed_clips_elevation(self):
        d = Direction(azimuth=0.0, elevation=np.pi / 2 - 0.05).perturbed(0.0, 0.3)
        assert d.elevation == pytest.approx(np.pi / 2)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Direction(azimuth=0.0).azimuth = 1.0  # type: ignore[misc]


class TestWrapAngle:
    @pytest.mark.parametrize(
        "angle,expected",
        [(0.0, 0.0), (np.pi, -np.pi), (-np.pi, -np.pi), (3 * np.pi, -np.pi), (2 * np.pi, 0.0)],
    )
    def test_values(self, angle, expected):
        assert wrap_angle(angle) == pytest.approx(expected)

    def test_range(self):
        for angle in np.linspace(-20, 20, 101):
            wrapped = wrap_angle(angle)
            assert -np.pi <= wrapped < np.pi


class TestAngleDistance:
    def test_symmetric(self):
        assert angle_distance(0.3, 2.9) == pytest.approx(angle_distance(2.9, 0.3))

    def test_wrapround(self):
        assert angle_distance(np.pi - 0.1, -np.pi + 0.1) == pytest.approx(0.2)

    def test_zero(self):
        assert angle_distance(1.2, 1.2) == 0.0


class TestGrids:
    def test_uniform_angle_grid_count(self):
        assert len(uniform_angle_grid(7)) == 7

    def test_uniform_angle_grid_centers(self):
        grid = uniform_angle_grid(2, low=0.0, high=1.0)
        np.testing.assert_allclose(grid, [0.25, 0.75])

    def test_uniform_angle_grid_bounds(self):
        grid = uniform_angle_grid(16)
        assert grid.min() > -np.pi / 2
        assert grid.max() < np.pi / 2

    def test_uniform_angle_grid_invalid(self):
        with pytest.raises(ValidationError):
            uniform_angle_grid(0)
        with pytest.raises(ValidationError):
            uniform_angle_grid(4, low=1.0, high=0.0)

    def test_uniform_sine_grid_sines_uniform(self):
        grid = uniform_sine_grid(8)
        sines = np.sin(grid)
        steps = np.diff(sines)
        np.testing.assert_allclose(steps, steps[0])

    def test_uniform_sine_grid_symmetric(self):
        grid = uniform_sine_grid(6)
        np.testing.assert_allclose(grid, -grid[::-1], atol=1e-12)

    def test_uniform_sine_grid_single(self):
        np.testing.assert_allclose(uniform_sine_grid(1), [0.0])

    def test_uniform_sine_grid_invalid(self):
        with pytest.raises(ValidationError):
            uniform_sine_grid(0)


class TestAngularSeparation:
    def test_zero_for_same(self):
        d = Direction(azimuth=0.4, elevation=0.1)
        assert angular_separation(d, d) == pytest.approx(0.0, abs=1e-7)

    def test_right_angle(self):
        a = Direction(azimuth=0.0)
        b = Direction(azimuth=np.pi / 2)
        assert angular_separation(a, b) == pytest.approx(np.pi / 2)

    def test_symmetric(self):
        a = Direction(azimuth=0.4, elevation=0.3)
        b = Direction(azimuth=-1.0, elevation=-0.2)
        assert angular_separation(a, b) == pytest.approx(angular_separation(b, a))


class TestDirectionCosines:
    def test_broadside(self):
        assert direction_cosines(0.0, 0.0) == (0.0, 0.0)

    def test_unit_circle_bound(self):
        for az in np.linspace(-np.pi, np.pi, 17):
            for el in np.linspace(-np.pi / 2, np.pi / 2, 9):
                u, v = direction_cosines(az, el)
                assert u**2 + v**2 <= 1.0 + 1e-12


@settings(max_examples=100, deadline=None)
@given(angle=st.floats(-100.0, 100.0))
def test_property_wrap_angle_range(angle):
    wrapped = wrap_angle(angle)
    assert -np.pi <= wrapped < np.pi
    # Wrapping preserves the angle modulo 2*pi (residual near 0 or 2*pi).
    residual = (angle - wrapped) % (2 * np.pi)
    assert min(residual, 2 * np.pi - residual) == pytest.approx(0.0, abs=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    az1=st.floats(-3.1, 3.1),
    az2=st.floats(-3.1, 3.1),
    el1=st.floats(-1.5, 1.5),
    el2=st.floats(-1.5, 1.5),
)
def test_property_angular_separation_triangle(az1, az2, el1, el2):
    """Separation is a metric-like quantity: bounded by pi, symmetric."""
    a = Direction(azimuth=az1, elevation=el1)
    b = Direction(azimuth=az2, elevation=el2)
    sep = angular_separation(a, b)
    assert 0.0 <= sep <= np.pi + 1e-9
    assert sep == pytest.approx(angular_separation(b, a), abs=1e-9)
