"""Tests for correlated Rayleigh sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.rayleigh import covariance_sqrt, sample_correlated_rayleigh
from repro.exceptions import ValidationError
from repro.utils.linalg import random_psd


class TestCovarianceSqrt:
    def test_square_property(self, rng):
        q = random_psd(6, 3, rng)
        root = covariance_sqrt(q)
        np.testing.assert_allclose(root @ root, q, atol=1e-10)

    def test_hermitian_output(self, rng):
        root = covariance_sqrt(random_psd(5, 5, rng))
        np.testing.assert_allclose(root, root.conj().T, atol=1e-12)

    def test_identity(self):
        np.testing.assert_allclose(covariance_sqrt(np.eye(4)), np.eye(4), atol=1e-12)

    def test_clips_roundoff_negatives(self):
        q = np.diag([1.0, -1e-12])
        root = covariance_sqrt(q)
        assert np.all(np.isfinite(root))

    def test_rejects_indefinite(self):
        with pytest.raises(ValidationError):
            covariance_sqrt(np.diag([1.0, -0.5]))


class TestSampling:
    def test_shape_default(self, rng):
        q = random_psd(6, 2, rng)
        h = sample_correlated_rayleigh(rng, q)
        assert h.shape == (6, 1)

    def test_shape_tx_dim(self, rng):
        q = random_psd(6, 2, rng)
        assert sample_correlated_rayleigh(rng, q, tx_dim=4).shape == (6, 4)

    def test_shape_with_tx_covariance(self, rng):
        q_rx = random_psd(5, 2, rng)
        q_tx = random_psd(3, 3, rng)
        assert sample_correlated_rayleigh(rng, q_rx, tx_covariance=q_tx).shape == (5, 3)

    def test_rx_covariance_statistics(self, rng):
        """E[h h^H] -> Q for white TX side."""
        q = random_psd(4, 2, rng, scale=2.0)
        accumulator = np.zeros((4, 4), dtype=complex)
        count = 6000
        for _ in range(count):
            h = sample_correlated_rayleigh(rng, q)
            accumulator += h @ h.conj().T
        empirical = accumulator / count
        assert np.linalg.norm(empirical - q) / np.linalg.norm(q) < 0.1

    def test_invalid_tx_dim(self, rng):
        with pytest.raises(ValidationError):
            sample_correlated_rayleigh(rng, np.eye(3), tx_dim=0)
