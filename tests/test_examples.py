"""Smoke tests: the example scripts must stay runnable.

Each example runs in a subprocess exactly as a user would invoke it;
these tests pin the public API the examples exercise. The slower
campaign example runs with ``--trials 1``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Proposed" in result.stdout
        assert "loss" in result.stdout.lower()

    def test_campaign_single_trial(self):
        result = _run("beam_alignment_campaign.py", "--trials", "1")
        assert result.returncode == 0, result.stderr
        assert "Search effectiveness" in result.stdout
        assert "Cost efficiency" in result.stdout

    def test_channel_estimation_demo(self):
        result = _run("channel_estimation_demo.py")
        assert result.returncode == 0, result.stderr
        assert "decided rx" in result.stdout
        assert "rank95" in result.stdout
