"""Tests for the end-to-end MAC simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.random_search import RandomSearch
from repro.exceptions import ConfigurationError
from repro.mac.frames import FrameConfig
from repro.mac.simulator import MacSimulator


class TestMacSimulator:
    def test_interval_count(self, small_scenario, rng):
        simulator = MacSimulator(small_scenario)
        report = simulator.run(lambda: RandomSearch(), 0.2, num_intervals=3, rng=rng)
        assert len(report.intervals) == 3

    def test_aggregates_finite(self, small_scenario, rng):
        simulator = MacSimulator(small_scenario)
        report = simulator.run(lambda: RandomSearch(), 0.3, num_intervals=4, rng=rng)
        assert np.isfinite(report.mean_net_bps_hz)
        assert 0.0 <= report.mean_overhead <= 1.0

    def test_more_training_more_overhead(self, small_scenario, rng):
        simulator = MacSimulator(
            small_scenario, FrameConfig(coherence_time_us=2000.0)
        )
        low = simulator.run(
            lambda: RandomSearch(), 0.05, 3, np.random.default_rng(0)
        )
        high = simulator.run(
            lambda: RandomSearch(), 0.9, 3, np.random.default_rng(0)
        )
        assert high.mean_overhead > low.mean_overhead

    def test_invalid_intervals(self, small_scenario, rng):
        simulator = MacSimulator(small_scenario)
        with pytest.raises(ConfigurationError):
            simulator.run(lambda: RandomSearch(), 0.2, 0, rng)

    def test_interval_losses_nonnegative(self, small_scenario, rng):
        simulator = MacSimulator(small_scenario)
        report = simulator.run(lambda: RandomSearch(), 0.5, 3, rng)
        for interval in report.intervals:
            assert interval.loss_db >= -1e-9
