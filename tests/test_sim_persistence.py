"""Tests for sweep persistence."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.sim.persistence import (
    PROVENANCE_SCHEMA,
    build_provenance,
    load_cost_curve,
    load_effectiveness_sweep,
    save_cost_curve,
    save_effectiveness_sweep,
)
from repro.sim.sweep import CostEfficiencyCurve, EffectivenessSweep
from repro.utils.serialization import dump, load
from repro.version import __version__


@pytest.fixture
def sweep() -> EffectivenessSweep:
    return EffectivenessSweep(
        search_rates=[0.1, 0.3],
        losses={
            "Random": [[3.0, 4.0, 5.0], [1.0, 1.5, 2.0]],
            "Proposed": [[2.0, 2.5, 3.0], [0.5, 0.6, 0.7]],
        },
    )


class TestSweepRoundTrip:
    def test_roundtrip_preserves_content(self, sweep, tmp_path: Path):
        target = tmp_path / "sweep.json"
        save_effectiveness_sweep(sweep, target)
        loaded = load_effectiveness_sweep(target)
        assert loaded.search_rates == sweep.search_rates
        assert loaded.losses == sweep.losses

    def test_stats_recomputed_on_load(self, sweep, tmp_path: Path):
        target = tmp_path / "sweep.json"
        save_effectiveness_sweep(sweep, target)
        loaded = load_effectiveness_sweep(target)
        np.testing.assert_allclose(
            loaded.mean_loss("Proposed"), sweep.mean_loss("Proposed")
        )

    def test_rejects_foreign_json(self, tmp_path: Path):
        target = tmp_path / "other.json"
        dump({"something": "else"}, target)
        with pytest.raises(ValidationError):
            load_effectiveness_sweep(target)


class TestCurveRoundTrip:
    def test_roundtrip(self, tmp_path: Path):
        curve = CostEfficiencyCurve(
            target_losses_db=[1.0, 3.0],
            required_rates={"Random": [0.5, 0.2], "Proposed": [0.3, 0.1]},
        )
        target = tmp_path / "curve.json"
        save_cost_curve(curve, target)
        loaded = load_cost_curve(target)
        assert loaded.target_losses_db == curve.target_losses_db
        assert loaded.required_rates == curve.required_rates

    def test_rejects_sweep_file(self, tmp_path: Path):
        sweep = EffectivenessSweep(search_rates=[0.1], losses={"X": [[1.0]]})
        target = tmp_path / "sweep.json"
        save_effectiveness_sweep(sweep, target)
        with pytest.raises(ValidationError):
            load_cost_curve(target)


class TestProvenance:
    def test_build_provenance_fields(self, small_config):
        block = build_provenance(
            base_seed=7, num_trials=30, config=small_config, note="x"
        )
        assert block["schema"] == PROVENANCE_SCHEMA
        assert block["code_version"] == __version__
        assert block["base_seed"] == 7
        assert block["num_trials"] == 30
        assert block["config"]["snr_db"] == small_config.snr_db
        assert block["note"] == "x"

    def test_build_provenance_deterministic(self, small_config):
        first = build_provenance(base_seed=7, num_trials=30, config=small_config)
        second = build_provenance(base_seed=7, num_trials=30, config=small_config)
        assert first == second

    def test_sweep_provenance_saved_and_tolerated(self, sweep, tmp_path, small_config):
        target = tmp_path / "sweep.json"
        save_effectiveness_sweep(
            sweep, target, provenance=build_provenance(base_seed=3, config=small_config)
        )
        raw = load(target)
        assert raw["provenance"]["base_seed"] == 3
        assert raw["provenance"]["config"]["channel"] == small_config.channel.value
        loaded = load_effectiveness_sweep(target)  # loader ignores provenance
        assert loaded.losses == sweep.losses

    def test_old_files_without_provenance_still_load(self, sweep, tmp_path):
        target = tmp_path / "old.json"
        dump(
            {
                "kind": "effectiveness-sweep-v1",
                "search_rates": sweep.search_rates,
                "losses": sweep.losses,
            },
            target,
        )
        loaded = load_effectiveness_sweep(target)
        assert loaded.losses == sweep.losses

    def test_curve_provenance(self, tmp_path):
        curve = CostEfficiencyCurve(
            target_losses_db=[1.0], required_rates={"Random": [0.5]}
        )
        target = tmp_path / "curve.json"
        save_cost_curve(curve, target, provenance=build_provenance(num_trials=10))
        assert load(target)["provenance"]["num_trials"] == 10
        assert load_cost_curve(target).required_rates == curve.required_rates
