"""Tests for alignment results and traces."""

from __future__ import annotations

import pytest

from repro.core.result import AlignmentResult, SlotRecord
from repro.exceptions import ValidationError
from repro.measurement.measurer import Measurement
from repro.types import BeamPair


class TestSlotRecord:
    def test_fields(self):
        record = SlotRecord(slot=1, tx_beam=2, probe_rx_beams=(3, 4), decided_rx_beam=5)
        assert record.probe_rx_beams == (3, 4)
        assert record.decided_rx_beam == 5


class TestAlignmentResult:
    def _result(self, **overrides):
        defaults = dict(
            algorithm="test",
            selected=BeamPair(0, 1),
            selected_power=1.5,
            measurements_used=10,
            total_pairs=100,
        )
        defaults.update(overrides)
        return AlignmentResult(**defaults)

    def test_search_rate(self):
        assert self._result().search_rate == pytest.approx(0.1)

    def test_invalid_counts(self):
        with pytest.raises(ValidationError):
            self._result(measurements_used=-1)
        with pytest.raises(ValidationError):
            self._result(total_pairs=0)

    def test_measured_pairs_dedup_and_order(self):
        trace = [
            Measurement(power=1.0, z=1 + 0j, pair=BeamPair(0, 0)),
            Measurement(power=2.0, z=1 + 0j, pair=None),  # wide-beam probe
            Measurement(power=3.0, z=1 + 0j, pair=BeamPair(1, 1)),
            Measurement(power=4.0, z=1 + 0j, pair=BeamPair(0, 0)),
        ]
        result = self._result(trace=trace)
        assert result.measured_pairs() == [BeamPair(0, 0), BeamPair(1, 1)]


class TestBeamPair:
    def test_ordering(self):
        assert BeamPair(0, 1) < BeamPair(1, 0)

    def test_hashable(self):
        assert len({BeamPair(0, 1), BeamPair(0, 1), BeamPair(1, 0)}) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BeamPair(-1, 0)
