"""Tests for campaign heartbeats and the health dashboard classification."""

from __future__ import annotations

import time

import pytest

from repro.campaign import (
    FaultInjector,
    ShardStore,
    assemble_effectiveness_sweep,
    campaign_health,
    plan_effectiveness_sweep,
    render_campaign_health,
    run_campaign,
)
from repro.campaign.health import MIN_STALL_SECONDS
from repro.exceptions import ShardExecutionError
from repro.sim.parallel import SchemeSpec

SPECS = (SchemeSpec.of("Random"), SchemeSpec.of("Scan"))
RATES = (0.2, 0.4)
TRIALS = 4
SEED = 11


@pytest.fixture
def plan(small_config):
    return plan_effectiveness_sweep(
        small_config, SPECS, RATES, TRIALS, base_seed=SEED, shard_trials=2
    )


@pytest.fixture
def store(tmp_path) -> ShardStore:
    return ShardStore(tmp_path / "store")


class TestHeartbeatStore:
    def test_write_and_read_roundtrip(self, store):
        store.write_heartbeat("plan1", "shardA", "running", shard_index=0, attempt=1)
        records = store.read_heartbeats("plan1")
        record = records["shardA"]
        assert record["status"] == "running"
        assert record["attempt"] == 1
        assert record["schema"] == "repro.campaign.heartbeat/1"
        assert record["updated_unix_s"] <= time.time()

    def test_rewrites_replace(self, store):
        store.write_heartbeat("p", "s", "running", shard_index=0)
        store.write_heartbeat("p", "s", "done", shard_index=0, duration_s=1.5)
        record = store.read_heartbeats("p")["s"]
        assert record["status"] == "done"
        assert record["duration_s"] == 1.5

    def test_unreadable_records_are_skipped(self, store):
        store.write_heartbeat("p", "good", "running", shard_index=0)
        store.heartbeat_path("p", "bad").write_text("{truncated", encoding="utf-8")
        assert set(store.read_heartbeats("p")) == {"good"}

    def test_missing_campaign_is_empty(self, store):
        assert store.read_heartbeats("nope") == {}


class TestCampaignHealth:
    def test_untouched_campaign_is_all_pending(self, plan, store):
        health = campaign_health(plan, store)
        assert health.counts["pending"] == len(plan.shards)
        assert not health.complete
        assert health.eta_s is None

    def test_completed_campaign_is_all_done(self, plan, store):
        run_campaign(plan, store)
        health = campaign_health(plan, store)
        assert health.complete
        assert health.counts["done"] == len(plan.shards)
        assert health.done_trials == plan.total_trials
        assert health.median_shard_s is not None
        # Every shard got a "done" heartbeat with its duration.
        beats = store.read_heartbeats(plan.digest)
        assert len(beats) == len(plan.shards)
        assert all(b["status"] == "done" for b in beats.values())

    def test_heartbeats_opt_out(self, plan, store):
        run_campaign(plan, store, heartbeats=False)
        assert store.read_heartbeats(plan.digest) == {}
        # Health still classifies from artifacts alone.
        assert campaign_health(plan, store).complete

    def test_heartbeats_never_touch_artifacts(self, plan, store, tmp_path):
        """Artifact bytes are identical with heartbeats on or off."""
        run_campaign(plan, store, heartbeats=True)
        silent = ShardStore(tmp_path / "silent")
        run_campaign(plan, silent, heartbeats=False)
        for shard in plan.shards:
            with_beats = store.shard_path(shard.digest).read_bytes()
            without = silent.shard_path(shard.digest).read_bytes()
            assert with_beats == without

    def test_fresh_running_heartbeat(self, plan, store):
        shard = plan.shards[0]
        store.write_heartbeat(plan.digest, shard.digest, "running", shard_index=0)
        health = campaign_health(plan, store)
        assert health.shards[0].state == "running"

    def test_stale_running_heartbeat_is_stalled(self, plan, store):
        shard = plan.shards[0]
        now = time.time()
        store.write_heartbeat(
            plan.digest,
            shard.digest,
            "running",
            shard_index=0,
            updated_unix_s=now - 10 * MIN_STALL_SECONDS,
        )
        health = campaign_health(plan, store, now_unix_s=now)
        assert health.shards[0].state == "stalled"

    def test_stall_threshold_scales_with_median(self, plan, store):
        run_campaign(plan, store)
        health = campaign_health(plan, store, stall_factor=1e6)
        assert health.stall_threshold_s >= MIN_STALL_SECONDS

    def test_failed_heartbeat_classifies_failed(self, plan, store):
        shard = plan.shards[0]
        store.write_heartbeat(
            plan.digest, shard.digest, "failed", shard_index=0, error="boom"
        )
        health = campaign_health(plan, store)
        assert health.shards[0].state == "failed"
        assert health.shards[0].error == "boom"

    def test_done_heartbeat_without_artifact_is_pending(self, plan, store):
        shard = plan.shards[0]
        store.write_heartbeat(
            plan.digest, shard.digest, "done", shard_index=0, duration_s=0.1
        )
        health = campaign_health(plan, store)
        assert health.shards[0].state == "pending"

    def test_artifact_truth_beats_heartbeat(self, plan, store):
        run_campaign(plan, store)
        shard = plan.shards[0]
        now = time.time()
        store.write_heartbeat(
            plan.digest,
            shard.digest,
            "running",
            shard_index=0,
            updated_unix_s=now - 10 * MIN_STALL_SECONDS,
        )
        health = campaign_health(plan, store, now_unix_s=now)
        assert health.shards[0].state == "done"

    def test_payload_is_json_shaped(self, plan, store):
        import json

        run_campaign(plan, store)
        payload = campaign_health(plan, store).to_payload()
        json.dumps(payload)  # must serialize as-is
        assert payload["complete"] is True
        assert payload["counts"]["done"] == len(plan.shards)
        assert len(payload["shards"]) == len(plan.shards)


class TestKilledAndResumed:
    def test_crashed_campaign_resumes_and_heartbeats_settle(self, plan, store):
        """A campaign that dies mid-run must leave classifiable heartbeats
        and settle to all-done (with bit-identical results) on resume."""
        injector = FaultInjector(crash_shards={1: 10})
        with pytest.raises(ShardExecutionError):
            run_campaign(plan, store, retries=0, fault_injector=injector)
        beats = store.read_heartbeats(plan.digest)
        assert beats[plan.shards[0].digest]["status"] == "done"
        assert beats[plan.shards[1].digest]["status"] == "failed"
        health = campaign_health(plan, store)
        states = [shard.state for shard in health.shards]
        assert states[0] == "done"
        assert states[1] == "failed"
        assert not health.complete

        # Resume without the fault: failed shard re-runs, heartbeats heal.
        run_campaign(plan, store)
        health = campaign_health(plan, store)
        assert health.complete
        beats = store.read_heartbeats(plan.digest)
        assert all(b["status"] == "done" for b in beats.values())
        sweep = assemble_effectiveness_sweep(plan, store)
        assert set(sweep.losses) == {spec.name for spec in SPECS}

    def test_stale_heartbeat_from_killed_process_goes_stalled_then_done(
        self, plan, store
    ):
        # Simulate the record a SIGKILLed worker leaves behind.
        shard = plan.shards[0]
        now = time.time()
        store.write_heartbeat(
            plan.digest,
            shard.digest,
            "running",
            shard_index=0,
            updated_unix_s=now - 100 * MIN_STALL_SECONDS,
        )
        assert campaign_health(plan, store, now_unix_s=now).shards[0].state == "stalled"
        run_campaign(plan, store)
        assert campaign_health(plan, store).shards[0].state == "done"


class TestRenderDashboard:
    def test_render_complete(self, plan, store):
        run_campaign(plan, store)
        text = render_campaign_health(campaign_health(plan, store))
        assert f"campaign {plan.digest[:12]}" in text
        assert "campaign complete" in text
        assert f"trials: {plan.total_trials}/{plan.total_trials}" in text

    def test_render_attention_table(self, plan, store):
        now = time.time()
        store.write_heartbeat(
            plan.digest,
            plan.shards[0].digest,
            "running",
            shard_index=0,
            updated_unix_s=now - 10 * MIN_STALL_SECONDS,
        )
        text = render_campaign_health(campaign_health(plan, store, now_unix_s=now))
        assert "stalled" in text
        assert "beat age" in text
        assert "campaign complete" not in text


class TestLeaseAwareHealth:
    def _claim(self, store, plan, shard, owner="w0", age_s=0.0, ttl_s=30.0,
               host=None, pid=None):
        import os
        import socket

        from repro.campaign.lease import LeaseRecord
        from repro.utils.serialization import dump

        now = time.time()
        record = LeaseRecord(
            plan=plan.digest, shard=shard.digest, owner=owner,
            token=f"t:{owner}", pid=pid if pid is not None else os.getpid(),
            host=host if host is not None else socket.gethostname(),
            acquired_unix_s=now - age_s, renewed_unix_s=now - age_s, ttl_s=ttl_s,
        )
        path = store.claim_path(plan.digest, shard.digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        dump(record.to_payload(), path)
        return record

    def test_live_lease_running_shard_stays_running(self, plan, store):
        shard = plan.shards[0]
        store.write_heartbeat(
            plan.digest, shard.digest, "running", shard_index=0, worker="w0"
        )
        self._claim(store, plan, shard, owner="w0")
        health = campaign_health(plan, store)
        view = health.shards[0]
        assert view.state == "running"
        assert view.worker == "w0"
        assert view.lease_owner == "w0"
        assert view.lease_expired is False
        assert view.lease_age_s is not None and view.lease_age_s < 5.0

    def test_expired_lease_flags_stalled_immediately(self, plan, store):
        """A SIGKILLed worker's shard stalls without waiting out the

        heartbeat threshold: the fresh heartbeat says running, the dead
        lease says reassignable."""
        shard = plan.shards[0]
        store.write_heartbeat(
            plan.digest, shard.digest, "running", shard_index=0, worker="w0"
        )
        self._claim(
            store, plan, shard, owner="w0", age_s=500.0, ttl_s=30.0,
            host="not-this-host", pid=1,
        )
        health = campaign_health(plan, store)
        view = health.shards[0]
        assert view.state == "stalled"
        assert view.lease_expired is True

    def test_worker_falls_back_to_lease_owner(self, plan, store):
        shard = plan.shards[0]
        store.write_heartbeat(plan.digest, shard.digest, "running", shard_index=0)
        self._claim(store, plan, shard, owner="w3")
        view = campaign_health(plan, store).shards[0]
        assert view.worker == "w3"

    def test_payload_carries_lease_fields(self, plan, store):
        import json

        shard = plan.shards[0]
        store.write_heartbeat(
            plan.digest, shard.digest, "running", shard_index=0, worker="w0"
        )
        self._claim(store, plan, shard, owner="w0")
        payload = campaign_health(plan, store).to_payload()
        json.dumps(payload)  # JSON-shaped end to end
        entry = payload["shards"][0]
        assert entry["worker"] == "w0"
        assert entry["lease_owner"] == "w0"
        assert entry["lease_expired"] is False
        assert entry["lease_age_s"] is not None

    def test_render_shows_worker_and_lease_columns(self, plan, store):
        running, dead = plan.shards[0], plan.shards[1]
        store.write_heartbeat(
            plan.digest, running.digest, "running", shard_index=0, worker="w0"
        )
        self._claim(store, plan, running, owner="w0")
        store.write_heartbeat(
            plan.digest, dead.digest, "running", shard_index=1, worker="w9"
        )
        self._claim(
            store, plan, dead, owner="w9", age_s=500.0, ttl_s=30.0,
            host="not-this-host", pid=1,
        )
        rendered = render_campaign_health(campaign_health(plan, store))
        assert "worker" in rendered and "lease" in rendered
        assert "w0" in rendered and "w9" in rendered
        assert "expired" in rendered


class TestHostRollup:
    def test_hosts_grouped_from_heartbeats(self, plan, store):
        store.write_heartbeat(
            plan.digest, plan.shards[0].digest, "running",
            shard_index=0, worker="w0", host="node-a",
        )
        store.write_heartbeat(
            plan.digest, plan.shards[1].digest, "running",
            shard_index=1, worker="w1", host="node-a",
        )
        store.write_heartbeat(
            plan.digest, plan.shards[2].digest, "running",
            shard_index=2, worker="w2", host="node-b",
        )
        hosts = {h.host: h for h in campaign_health(plan, store).hosts()}
        assert set(hosts) == {"node-a", "node-b"}
        assert hosts["node-a"].active == 2
        assert hosts["node-a"].workers == ("w0", "w1")
        assert hosts["node-b"].active == 1
        assert hosts["node-a"].last_beat_age_s is not None

    def test_host_falls_back_to_lease(self, plan, store):
        shard = plan.shards[0]
        store.write_heartbeat(plan.digest, shard.digest, "running", shard_index=0)
        helper = TestLeaseAwareHealth()
        helper._claim(store, plan, shard, owner="w7", host="lease-host")
        health = campaign_health(plan, store)
        assert health.shards[0].host == "lease-host"
        hosts = health.hosts()
        assert [h.host for h in hosts] == ["lease-host"]

    def test_hostless_shards_left_out(self, plan, store):
        store.write_heartbeat(
            plan.digest, plan.shards[0].digest, "running", shard_index=0
        )
        assert campaign_health(plan, store).hosts() == ()

    def test_scheduler_stamps_host(self, plan, store):
        import socket

        run_campaign(plan, store)
        hosts = campaign_health(plan, store).hosts()
        assert [h.host for h in hosts] == [socket.gethostname()]
        assert hosts[0].done == len(plan.shards)
        assert hosts[0].done_trials == plan.total_trials

    def test_payload_and_render_carry_hosts(self, plan, store):
        import json

        store.write_heartbeat(
            plan.digest, plan.shards[0].digest, "running",
            shard_index=0, worker="w0", host="node-a",
        )
        health = campaign_health(plan, store)
        payload = health.to_payload()
        json.dumps(payload)
        assert payload["hosts"][0]["host"] == "node-a"
        assert payload["shards"][0]["host"] == "node-a"
        rendered = render_campaign_health(health)
        assert "host" in rendered and "node-a" in rendered
