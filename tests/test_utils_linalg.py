"""Unit and property tests for repro.utils.linalg."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.utils.linalg import (
    db_to_linear,
    dominant_eigenvector,
    effective_rank,
    eigh_sorted,
    energy_fraction,
    hermitian,
    is_hermitian,
    linear_to_db,
    nuclear_norm,
    project_psd,
    quadratic_forms,
    random_psd,
    soft_threshold_eigenvalues,
    spectral_norm,
    unit_norm,
)


def _random_hermitian(rng: np.random.Generator, n: int) -> np.ndarray:
    a = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
    return hermitian(a)


class TestHermitian:
    def test_idempotent(self, rng):
        a = rng.normal(size=(5, 5)) + 1j * rng.normal(size=(5, 5))
        h = hermitian(a)
        np.testing.assert_allclose(h, hermitian(h))

    def test_result_is_hermitian(self, rng):
        a = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        assert is_hermitian(hermitian(a))

    def test_preserves_hermitian_input(self, rng):
        h = _random_hermitian(rng, 6)
        np.testing.assert_allclose(hermitian(h), h)

    def test_is_hermitian_rejects_nonsquare(self):
        assert not is_hermitian(np.ones((2, 3)))

    def test_is_hermitian_rejects_asymmetric(self):
        assert not is_hermitian(np.array([[1.0, 2.0], [3.0, 4.0]]))


class TestEighSorted:
    def test_descending_order(self, rng):
        values, _ = eigh_sorted(_random_hermitian(rng, 8))
        assert np.all(np.diff(values) <= 1e-12)

    def test_reconstruction(self, rng):
        h = _random_hermitian(rng, 6)
        values, vectors = eigh_sorted(h)
        np.testing.assert_allclose((vectors * values) @ vectors.conj().T, h, atol=1e-10)


class TestProjectPsd:
    def test_psd_output(self, rng):
        projected = project_psd(_random_hermitian(rng, 7))
        assert np.min(np.linalg.eigvalsh(projected)) >= -1e-10

    def test_identity_on_psd(self, rng):
        psd = random_psd(5, 3, rng)
        np.testing.assert_allclose(project_psd(psd), psd, atol=1e-10)

    def test_zeroes_negative_definite(self):
        np.testing.assert_allclose(project_psd(-np.eye(3)), np.zeros((3, 3)), atol=1e-12)

    def test_projection_is_closest_psd(self, rng):
        """Projection must beat any other PSD candidate in Frobenius distance."""
        h = _random_hermitian(rng, 5)
        projected = project_psd(h)
        candidate = random_psd(5, 2, rng)
        assert np.linalg.norm(h - projected) <= np.linalg.norm(h - candidate) + 1e-9


class TestSoftThreshold:
    def test_reduces_eigenvalues(self, rng):
        psd = random_psd(6, 4, rng, scale=6.0)
        out = soft_threshold_eigenvalues(psd, 0.1)
        before, _ = eigh_sorted(psd)
        after, _ = eigh_sorted(out)
        assert np.all(after <= before + 1e-10)

    def test_zero_threshold_projects_only(self, rng):
        psd = random_psd(5, 3, rng)
        np.testing.assert_allclose(soft_threshold_eigenvalues(psd, 0.0), psd, atol=1e-10)

    def test_large_threshold_gives_zero(self, rng):
        psd = random_psd(4, 2, rng)
        big = float(np.max(np.linalg.eigvalsh(psd))) + 1.0
        np.testing.assert_allclose(
            soft_threshold_eigenvalues(psd, big), np.zeros((4, 4)), atol=1e-10
        )

    def test_negative_threshold_rejected(self, rng):
        with pytest.raises(ValidationError):
            soft_threshold_eigenvalues(np.eye(3), -0.5)

    def test_exact_shrinkage_on_diagonal(self):
        out = soft_threshold_eigenvalues(np.diag([3.0, 1.0, 0.2]), 0.5)
        np.testing.assert_allclose(np.sort(np.linalg.eigvalsh(out)), [0.0, 0.5, 2.5], atol=1e-12)


class TestNorms:
    def test_nuclear_equals_trace_for_psd(self, rng):
        psd = random_psd(6, 3, rng)
        assert nuclear_norm(psd) == pytest.approx(float(np.real(np.trace(psd))), rel=1e-9)

    def test_spectral_leq_nuclear(self, rng):
        m = rng.normal(size=(5, 7))
        assert spectral_norm(m) <= nuclear_norm(m) + 1e-12

    def test_unit_norm(self, rng):
        v = rng.normal(size=9) + 1j * rng.normal(size=9)
        assert np.linalg.norm(unit_norm(v)) == pytest.approx(1.0)

    def test_unit_norm_zero_vector(self):
        with pytest.raises(ValidationError):
            unit_norm(np.zeros(4))


class TestEffectiveRank:
    def test_full_rank_identity(self):
        assert effective_rank(np.eye(10), energy=0.95) == 10

    def test_rank_one(self, rng):
        psd = random_psd(8, 1, rng)
        assert effective_rank(psd) == 1

    def test_energy_fraction_monotone(self, rng):
        psd = random_psd(8, 5, rng)
        fractions = [energy_fraction(psd, k) for k in range(9)]
        assert all(b >= a - 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_energy_fraction_complete(self, rng):
        psd = random_psd(6, 6, rng)
        assert energy_fraction(psd, 6) == pytest.approx(1.0)

    def test_zero_matrix(self):
        assert effective_rank(np.zeros((4, 4))) == 0
        assert energy_fraction(np.zeros((4, 4)), 2) == 0.0

    def test_invalid_energy(self):
        with pytest.raises(ValidationError):
            effective_rank(np.eye(3), energy=1.5)

    def test_negative_dimensions(self):
        with pytest.raises(ValidationError):
            energy_fraction(np.eye(3), -1)


class TestDominantEigenvector:
    def test_matches_construction(self, rng):
        v = unit_norm(rng.normal(size=6) + 1j * rng.normal(size=6))
        q = 5.0 * np.outer(v, v.conj()) + 0.1 * np.eye(6)
        dominant = dominant_eigenvector(q)
        assert abs(np.vdot(dominant, v)) == pytest.approx(1.0, abs=1e-6)

    def test_unit_norm_output(self, rng):
        assert np.linalg.norm(dominant_eigenvector(random_psd(5, 3, rng))) == pytest.approx(1.0)


class TestQuadraticForms:
    def test_matches_loop(self, rng):
        q = random_psd(6, 3, rng)
        vectors = rng.normal(size=(6, 4)) + 1j * rng.normal(size=(6, 4))
        expected = [np.real(vectors[:, k].conj() @ q @ vectors[:, k]) for k in range(4)]
        np.testing.assert_allclose(quadratic_forms(q, vectors), expected, atol=1e-10)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValidationError):
            quadratic_forms(np.eye(3), np.ones((4, 2)))

    def test_nonnegative_for_psd(self, rng):
        q = random_psd(7, 4, rng)
        vectors = rng.normal(size=(7, 5)) + 1j * rng.normal(size=(7, 5))
        assert np.all(quadratic_forms(q, vectors) >= -1e-10)


class TestDbConversions:
    @pytest.mark.parametrize("db,linear", [(0.0, 1.0), (10.0, 10.0), (-10.0, 0.1), (3.0, 10**0.3)])
    def test_db_to_linear(self, db, linear):
        assert db_to_linear(db) == pytest.approx(linear)

    def test_roundtrip(self):
        for value in (0.01, 1.0, 123.4):
            assert db_to_linear(linear_to_db(value)) == pytest.approx(value)

    def test_zero_maps_to_neg_inf(self):
        assert linear_to_db(0.0) == -np.inf

    def test_array_input(self):
        out = linear_to_db(np.array([1.0, 10.0]))
        np.testing.assert_allclose(out, [0.0, 10.0])


class TestRandomPsd:
    def test_rank(self, rng):
        psd = random_psd(8, 3, rng)
        values = np.linalg.eigvalsh(psd)
        assert int(np.sum(values > 1e-9 * values.max())) == 3

    def test_zero_rank(self, rng):
        np.testing.assert_array_equal(random_psd(4, 0, rng), np.zeros((4, 4)))

    def test_invalid_rank(self, rng):
        with pytest.raises(ValidationError):
            random_psd(4, 5, rng)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 10), rank=st.integers(1, 10))
def test_property_psd_projection_fixed_point(seed, n, rank):
    """project_psd is a fixed point on PSD matrices of any size/rank."""
    rng = np.random.default_rng(seed)
    psd = random_psd(n, min(rank, n), rng)
    np.testing.assert_allclose(project_psd(psd), psd, atol=1e-8)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), threshold=st.floats(0.0, 5.0))
def test_property_soft_threshold_nuclear_contraction(seed, threshold):
    """Soft-thresholding never increases the nuclear norm."""
    rng = np.random.default_rng(seed)
    h = _random_hermitian(rng, 6)
    out = soft_threshold_eigenvalues(h, threshold)
    assert nuclear_norm(out) <= nuclear_norm(h) + 1e-8


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_property_quadratic_forms_linear_in_matrix(seed):
    """v^H (A + B) v == v^H A v + v^H B v."""
    rng = np.random.default_rng(seed)
    a = random_psd(5, 2, rng)
    b = random_psd(5, 3, rng)
    vectors = rng.normal(size=(5, 4)) + 1j * rng.normal(size=(5, 4))
    np.testing.assert_allclose(
        quadratic_forms(a + b, vectors),
        quadratic_forms(a, vectors) + quadratic_forms(b, vectors),
        atol=1e-9,
    )
