"""Tests for matrix-completion metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mc.metrics import numerical_rank, observed_rmse, relative_error
from repro.mc.operators import EntryMask
from repro.utils.linalg import random_psd


class TestRelativeError:
    def test_exact_match(self, rng):
        truth = random_psd(5, 2, rng)
        assert relative_error(truth, truth) == 0.0

    def test_scaling(self, rng):
        truth = random_psd(5, 2, rng)
        assert relative_error(2 * truth, truth) == pytest.approx(1.0)

    def test_zero_truth(self):
        assert relative_error(np.ones((2, 2)), np.zeros((2, 2))) == pytest.approx(2.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            relative_error(np.eye(2), np.eye(3))


class TestObservedRmse:
    def test_zero_for_match(self, rng):
        truth = random_psd(6, 2, rng)
        mask = EntryMask.random((6, 6), 0.5, rng)
        assert observed_rmse(truth, truth, mask) == 0.0

    def test_constant_offset(self, rng):
        mask = EntryMask.random((4, 4), 0.8, rng)
        a = np.zeros((4, 4))
        b = np.full((4, 4), 2.0)
        assert observed_rmse(a, b, mask) == pytest.approx(2.0)


class TestNumericalRank:
    def test_identity(self):
        assert numerical_rank(np.eye(7)) == 7

    def test_low_rank(self, rng):
        assert numerical_rank(random_psd(9, 3, rng)) == 3

    def test_zero(self):
        assert numerical_rank(np.zeros((4, 4))) == 0

    def test_threshold_effect(self, rng):
        matrix = np.diag([1.0, 1e-3])
        assert numerical_rank(matrix, threshold=1e-2) == 1
        assert numerical_rank(matrix, threshold=1e-4) == 2

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            numerical_rank(np.eye(2), threshold=0.0)
