"""Tests for the thermal-noise / link-budget helpers."""

from __future__ import annotations

import pytest

from repro.channel.noise import link_snr_db, link_snr_linear, thermal_noise_dbm
from repro.exceptions import ValidationError


class TestThermalNoise:
    def test_classic_value(self):
        """kT0 * 1 Hz is -174 dBm/Hz at 290 K."""
        assert thermal_noise_dbm(1.0) == pytest.approx(-173.98, abs=0.05)

    def test_bandwidth_scaling(self):
        """x10 bandwidth -> +10 dB noise."""
        assert thermal_noise_dbm(1e9) - thermal_noise_dbm(1e8) == pytest.approx(10.0)

    def test_noise_figure_additive(self):
        assert thermal_noise_dbm(1e6, noise_figure_db=7.0) == pytest.approx(
            thermal_noise_dbm(1e6) + 7.0
        )

    def test_invalid_bandwidth(self):
        with pytest.raises(ValidationError):
            thermal_noise_dbm(0.0)


class TestLinkSnr:
    def test_budget_arithmetic(self):
        """SNR = P_tx - PL - N."""
        snr = link_snr_db(30.0, 120.0, 1e9, noise_figure_db=5.0)
        noise = thermal_noise_dbm(1e9, 5.0)
        assert snr == pytest.approx(30.0 - 120.0 - noise)

    def test_linear_consistency(self):
        db = link_snr_db(30.0, 110.0, 1e8)
        linear = link_snr_linear(30.0, 110.0, 1e8)
        assert linear == pytest.approx(10 ** (db / 10))

    def test_mmwave_regime_sanity(self):
        """A 28 GHz microcell at 100 m LOS with 30 dBm should close with
        positive pre-beamforming SNR over a modest bandwidth."""
        from repro.channel.pathloss import LinkState, NycPathLoss

        loss = NycPathLoss().mean_path_loss_db(100.0, LinkState.LOS)
        snr = link_snr_db(30.0, loss, 100e6, noise_figure_db=7.0)
        assert snr > 0.0
