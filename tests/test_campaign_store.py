"""Tests for the content-addressed shard store."""

from __future__ import annotations

import time

import pytest

from repro.campaign.plan import ShardSpec, plan_effectiveness_sweep
from repro.campaign.store import ShardStore
from repro.sim.parallel import SchemeSpec
from repro.utils.serialization import dump, load
from repro.version import __version__


@pytest.fixture
def specs():
    return (SchemeSpec.of("Random"),)


@pytest.fixture
def shard(small_config, specs) -> ShardSpec:
    return ShardSpec(
        config=small_config,
        schemes=specs,
        search_rate=0.2,
        base_seed=7,
        trial_start=0,
        trial_count=3,
    )


@pytest.fixture
def store(tmp_path) -> ShardStore:
    return ShardStore(tmp_path / "store")


class TestShardArtifacts:
    def test_put_get_roundtrip(self, store, shard):
        losses = {"Random": [1.0, 2.5, 0.0]}
        path = store.put(shard, losses)
        assert path.exists()
        assert store.get(shard) == losses
        assert store.has(shard)
        assert store.classify(shard) == "done"

    def test_missing_is_pending(self, store, shard):
        assert store.get(shard) is None
        assert not store.has(shard)
        assert store.classify(shard) == "pending"

    def test_put_rejects_wrong_shape(self, store, shard):
        with pytest.raises(ValueError):
            store.put(shard, {"Random": [1.0]})
        with pytest.raises(ValueError):
            store.put(shard, {"Other": [1.0, 2.0, 3.0]})

    def test_artifact_carries_provenance(self, store, shard):
        store.put(shard, {"Random": [1.0, 2.5, 0.0]})
        payload = load(store.shard_path(shard.digest))
        assert payload["kind"] == "campaign-shard-v1"
        assert payload["digest"] == shard.digest
        provenance = payload["provenance"]
        assert provenance["code_version"] == __version__
        assert provenance["base_seed"] == 7
        assert provenance["config"]["snr_db"] == shard.config.snr_db
        assert payload["spec"]["trial_count"] == 3

    def test_artifact_bytes_deterministic(self, store, shard):
        losses = {"Random": [1.0, 2.5, 0.0]}
        path = store.put(shard, losses)
        first = path.read_bytes()
        store.put(shard, losses)
        assert path.read_bytes() == first

    def test_corrupt_artifact_detected(self, store, shard):
        path = store.put(shard, {"Random": [1.0, 2.5, 0.0]})
        path.write_text(path.read_text()[:20], encoding="utf-8")
        assert store.get(shard) is None
        assert store.classify(shard) == "failed"

    def test_wrong_shape_artifact_detected(self, store, shard, specs, small_config):
        # An artifact for a *different* trial count under the same path
        # (e.g. a hand-edited file) must not be accepted.
        other = ShardSpec(small_config, specs, 0.2, 7, 0, 2)
        store.put(other, {"Random": [1.0, 2.0]})
        payload_path = store.shard_path(shard.digest)
        payload_path.write_bytes(store.shard_path(other.digest).read_bytes())
        assert store.get(shard) is None


class TestManifests:
    def test_save_load_roundtrip(self, store, small_config, specs):
        plan = plan_effectiveness_sweep(
            small_config, specs, (0.1, 0.2), 4, base_seed=3, shard_trials=2
        )
        store.save_manifest(plan)
        manifests = store.load_manifests()
        assert manifests == {plan.digest: plan}

    def test_invalid_manifest_skipped(self, store):
        (store.manifest_dir / "junk.json").write_text("{", encoding="utf-8")
        assert store.load_manifests() == {}


class TestGc:
    def test_gc_removes_orphans_and_corrupt(self, store, small_config, specs):
        plan = plan_effectiveness_sweep(
            small_config, specs, (0.1,), 4, base_seed=3, shard_trials=2
        )
        store.save_manifest(plan)
        kept, corrupted = plan.shards
        store.put(kept, {"Random": [1.0, 2.0]})
        corrupt_path = store.put(corrupted, {"Random": [3.0, 4.0]})
        corrupt_path.write_text("not json", encoding="utf-8")
        orphan = ShardSpec(small_config, specs, 0.9, 99, 0, 1)
        orphan_path = store.put(orphan, {"Random": [5.0]})

        would_remove = store.gc(dry_run=True)
        assert corrupt_path.exists() and orphan_path.exists()
        assert sorted(would_remove) == sorted([corrupt_path, orphan_path])

        removed = store.gc()
        assert sorted(removed) == sorted([corrupt_path, orphan_path])
        assert store.has(kept)
        assert not corrupt_path.exists()
        assert not orphan_path.exists()

    def test_gc_explicit_keep(self, store, small_config, specs):
        shard = ShardSpec(small_config, specs, 0.2, 7, 0, 1)
        path = store.put(shard, {"Random": [1.0]})
        assert store.gc(keep=[shard.digest]) == []
        assert path.exists()
        assert store.gc(keep=[]) == [path]
        assert not path.exists()


class TestGcLivenessTrees:
    def _plan(self, store, small_config, specs):
        plan = plan_effectiveness_sweep(
            small_config, specs, (0.1,), 4, base_seed=3, shard_trials=2
        )
        store.save_manifest(plan)
        return plan

    def test_gc_prunes_orphaned_heartbeats(self, store, small_config, specs):
        plan = self._plan(store, small_config, specs)
        shard = plan.shards[0]
        store.write_heartbeat(plan.digest, shard.digest, "running", shard_index=0)
        store.write_heartbeat(plan.digest, "not-a-shard", "running", shard_index=9)
        store.write_heartbeat("forgotten-plan", "whatever", "done", shard_index=0)

        removed = store.gc()
        assert store.heartbeat_path(plan.digest, shard.digest).exists()
        assert not store.heartbeat_path(plan.digest, "not-a-shard").exists()
        assert not store.heartbeat_dir("forgotten-plan").exists()
        assert len(removed) == 2

    def test_gc_prunes_orphaned_torn_and_expired_claims(
        self, store, small_config, specs
    ):
        from repro.campaign.lease import LeaseManager, LeaseRecord

        plan = self._plan(store, small_config, specs)
        live_shard, stale_shard = plan.shards

        # Live lease: held by this very process, freshly renewed.
        lease = LeaseManager(store, plan.digest, owner="alive")
        assert lease.acquire(live_shard.digest)

        # Expired lease: ttl long gone on a foreign host.
        now = time.time()
        expired = LeaseRecord(
            plan=plan.digest, shard=stale_shard.digest, owner="ghost",
            token="otherhost:1:x", pid=1, host="not-this-host",
            acquired_unix_s=now - 500.0, renewed_unix_s=now - 400.0, ttl_s=30.0,
        )
        expired_path = store.claim_path(plan.digest, stale_shard.digest)
        dump(expired.to_payload(), expired_path)

        # Orphans and torn writes.
        orphan_path = store.claim_path(plan.digest, "not-a-shard")
        dump(expired.to_payload(), orphan_path)
        foreign_dir = store.claim_dir("forgotten-plan")
        foreign_dir.mkdir(parents=True)
        torn_path = foreign_dir / "torn.json"
        torn_path.write_text('{"kind": "campaign-lea', encoding="utf-8")

        would_remove = store.gc(dry_run=True)
        assert expired_path.exists() and orphan_path.exists() and torn_path.exists()
        assert sorted(would_remove) == sorted(
            [expired_path, orphan_path, torn_path]
        )

        removed = store.gc()
        assert sorted(removed) == sorted([expired_path, orphan_path, torn_path])
        assert lease.still_owns(live_shard.digest)  # live lease untouched
        assert not foreign_dir.exists()  # emptied orphan dir pruned

    def test_gc_expiry_clock_is_injectable(self, store, small_config, specs):
        from repro.campaign.lease import LeaseManager

        plan = self._plan(store, small_config, specs)
        lease = LeaseManager(store, plan.digest, owner="w0", ttl_s=30.0)
        assert lease.acquire(plan.shards[0].digest)
        # From one hour in the future, this live lease looks expired.
        future = time.time() + 3600.0
        removed = store.gc(now_unix_s=future)
        assert [store.claim_path(plan.digest, plan.shards[0].digest)] == removed
