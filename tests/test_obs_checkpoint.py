"""Tests for the numeric flight recorder: digests, diff, inspect.

The core invariant: the checkpoint digest sequence is a function of the
seeded computation only — every execution engine (serial, batched at any
block size, process-parallel, killed-and-resumed campaign) records the
exact same events in the exact same order, and recording them changes no
seeded outcome.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign import (
    FaultInjector,
    ShardStore,
    assemble_effectiveness_sweep,
    plan_effectiveness_sweep,
    run_campaign,
)
from repro.exceptions import CampaignAborted, CampaignError, ConfigurationError
from repro.obs import (
    CheckpointRecorder,
    TraceRecorder,
    diff_checkpoints,
    load_checkpoints,
    read_trace,
    read_trace_tolerant,
    render_diff,
    render_storyboard,
    summarize_trace_file,
    trial_storyboard,
    use_recorder,
)
from repro.obs.checkpoint import CheckpointEvent, PerturbationSpec
from repro.sim.batch import run_trials_batched
from repro.sim.parallel import SchemeSpec, run_trials_parallel
from repro.sim.runner import run_trial, run_trials
from repro.utils.rng import labeled_spawn, spawn, trial_generator

SPECS = (SchemeSpec.of("Random"), SchemeSpec.of("Proposed", measurements_per_slot=4))
RATES = (0.2, 0.4)
TRIALS = 4
SEED = 11


def _schemes():
    return {spec.name: spec.build_factory() for spec in SPECS}


def _signature(events):
    """What cross-engine comparison keys on: scoped stage + digest, in order."""
    return [(event.key, event.stage, event.digest) for event in events]


def _serial_events(scenario):
    recorder = CheckpointRecorder()
    with use_recorder(recorder):
        for rate in RATES:
            run_trials(scenario, _schemes(), rate, TRIALS, base_seed=SEED)
    return recorder.events


@pytest.fixture(scope="module")
def serial_signature():
    from repro.sim.config import ChannelKind, ScenarioConfig
    from repro.sim.scenario import Scenario

    scenario = Scenario(
        ScenarioConfig(
            channel=ChannelKind.MULTIPATH,
            tx_shape=(2, 2),
            rx_shape=(2, 4),
            rx_beam_grid=(3, 3),
            snr_db=20.0,
            fading_blocks=4,
        )
    )
    return _signature(_serial_events(scenario))


class TestEngineInvariance:
    @pytest.mark.parametrize("batch_size", [1, 8, 32])
    def test_batched_matches_serial(self, small_scenario, serial_signature, batch_size):
        recorder = CheckpointRecorder()
        with use_recorder(recorder):
            for rate in RATES:
                run_trials_batched(
                    small_scenario,
                    _schemes(),
                    rate,
                    TRIALS,
                    base_seed=SEED,
                    batch_size=batch_size,
                )
        assert _signature(recorder.events) == serial_signature

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_parallel_matches_serial(
        self, small_config, serial_signature, max_workers
    ):
        recorder = CheckpointRecorder()
        with use_recorder(recorder):
            for rate in RATES:
                run_trials_parallel(
                    small_config,
                    SPECS,
                    rate,
                    TRIALS,
                    base_seed=SEED,
                    max_workers=max_workers,
                )
        assert _signature(recorder.events) == serial_signature

    def test_killed_and_resumed_campaign_matches_serial(
        self, small_config, serial_signature, tmp_path
    ):
        plan = plan_effectiveness_sweep(
            small_config, SPECS, RATES, TRIALS, base_seed=SEED, shard_trials=2
        )
        store = ShardStore(tmp_path / "store")
        with pytest.raises(CampaignAborted):
            run_campaign(
                plan,
                store,
                checkpoints=True,
                fault_injector=FaultInjector(abort_after=3),
            )
        # Resume under a parent flight recorder: skipped shards replay
        # their digests from the stored artifacts, executed shards record
        # live — the merged sequence must equal an uninterrupted serial run.
        recorder = CheckpointRecorder()
        with use_recorder(recorder):
            run_campaign(plan, store, checkpoints=True)
        assert _signature(recorder.events) == serial_signature

    def test_checkpointing_does_not_change_outcomes(self, small_scenario):
        plain = run_trial(
            small_scenario, _schemes(), 0.3, trial_generator(SEED, 0), trial_index=0
        )
        recorder = CheckpointRecorder()
        with use_recorder(recorder):
            recorded = run_trial(
                small_scenario, _schemes(), 0.3, trial_generator(SEED, 0), trial_index=0
            )
        assert recorder.events
        for name in plain:
            assert plain[name].loss_db == recorded[name].loss_db
            assert plain[name].result.selected == recorded[name].result.selected


class TestCampaignArtifacts:
    def test_artifacts_unchanged_without_checkpoints(self, small_config, tmp_path):
        plan = plan_effectiveness_sweep(
            small_config, SPECS, RATES, TRIALS, base_seed=SEED, shard_trials=2
        )
        off = ShardStore(tmp_path / "off")
        on = ShardStore(tmp_path / "on")
        run_campaign(plan, off)
        run_campaign(plan, on, checkpoints=True)
        for shard in plan.shards:
            assert off.get(shard) == on.get(shard)
            text = off.shard_path(shard.digest).read_text(encoding="utf-8")
            assert '"digests"' not in text
            manifest = on.digest_manifest(shard)
            assert manifest is not None
            assert {int(e["trial"]) for e in manifest} == set(shard.trial_indices)

    def test_verify_digests_gates_assembly(self, small_config, tmp_path):
        plan = plan_effectiveness_sweep(
            small_config, SPECS, RATES, TRIALS, base_seed=SEED, shard_trials=2
        )
        store = ShardStore(tmp_path / "store")
        run_campaign(plan, store)
        assemble_effectiveness_sweep(plan, store)  # fine without manifests
        with pytest.raises(CampaignError, match="digest manifest"):
            assemble_effectiveness_sweep(plan, store, verify_digests=True)
        store2 = ShardStore(tmp_path / "s2")
        run_campaign(plan, store2, checkpoints=True)
        assemble_effectiveness_sweep(plan, store2, verify_digests=True)


class TestLabeledSpawn:
    def test_bit_identical_to_spawn(self):
        rng_a = np.random.default_rng(123)
        rng_b = np.random.default_rng(123)
        plain = spawn(rng_a, 3)
        labeled = labeled_spawn(rng_b, ["x", "y", "z"])
        assert list(labeled) == ["x", "y", "z"]
        for child_a, child_b in zip(plain, labeled.values()):
            assert np.array_equal(
                child_a.random(8), child_b.random(8)
            )

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            labeled_spawn(np.random.default_rng(0), ["a", "a"])


class TestPerturbation:
    def test_parse_validation(self):
        spec = PerturbationSpec.parse("3:channel.draw:7")
        assert (spec.trial, spec.stage, spec.flat_index) == (3, "channel.draw", 7)
        with pytest.raises(ConfigurationError):
            PerturbationSpec.parse("not-a-spec")
        with pytest.raises(ConfigurationError):
            PerturbationSpec.parse("x:stage:1")

    def test_perturbs_recorder_copy_only(self, small_scenario):
        def run(perturb):
            recorder = CheckpointRecorder(perturb=perturb)
            with use_recorder(recorder):
                outcomes = run_trial(
                    small_scenario,
                    _schemes(),
                    0.3,
                    trial_generator(SEED, 0),
                    trial_index=0,
                )
            return recorder.events, outcomes

        clean_events, clean_outcomes = run(None)
        bumped_events, bumped_outcomes = run("0:channel.gain_table:5")
        # The simulation itself is untouched...
        for name in clean_outcomes:
            assert clean_outcomes[name].loss_db == bumped_outcomes[name].loss_db
        # ...and exactly one recorded digest changed: the targeted stage.
        changed = [
            (a.stage, a.key)
            for a, b in zip(clean_events, bumped_events)
            if a.digest != b.digest
        ]
        assert changed == [("channel.gain_table", ("0p3", 0, 1))]


class TestDiff:
    def _record_trace(self, scenario, path, spill_dir=None, perturb=None):
        with TraceRecorder(path) as trace:
            recorder = CheckpointRecorder(
                inner=trace,
                spill_dir=spill_dir,
                spill="all" if spill_dir else "off",
                perturb=perturb,
            )
            with use_recorder(recorder):
                run_trials(scenario, _schemes(), 0.3, 2, base_seed=SEED)

    def test_identical_runs_no_divergence(self, small_scenario, tmp_path):
        self._record_trace(small_scenario, tmp_path / "a.jsonl")
        self._record_trace(small_scenario, tmp_path / "b.jsonl")
        result = diff_checkpoints(
            load_checkpoints(tmp_path / "a.jsonl"),
            load_checkpoints(tmp_path / "b.jsonl"),
        )
        assert result.identical
        assert result.matched == result.compared > 0
        assert "no divergence" in render_diff(result)

    def test_divergence_localized_to_coordinate(self, small_scenario, tmp_path):
        self._record_trace(
            small_scenario, tmp_path / "a.jsonl", spill_dir=tmp_path / "spill_a"
        )
        self._record_trace(
            small_scenario,
            tmp_path / "b.jsonl",
            spill_dir=tmp_path / "spill_b",
            perturb="1:channel.gain_table:5",
        )
        result = diff_checkpoints(
            load_checkpoints(tmp_path / "a.jsonl"),
            load_checkpoints(tmp_path / "b.jsonl"),
        )
        assert not result.identical
        divergence = result.divergence
        assert divergence.stage == "channel.gain_table"
        assert divergence.trial == 1
        assert divergence.reason == "digest"
        (delta,) = divergence.deltas
        assert delta.name == "snr"
        assert np.ravel_multi_index(delta.index, (4, 9)) == 5
        assert delta.ulp == pytest.approx(1.0)
        assert delta.differing == 1
        text = render_diff(result)
        assert "channel.gain_table" in text and "trial 1" in text
        assert "ULP" in text

    def test_missing_event_reported(self, small_scenario, tmp_path):
        self._record_trace(small_scenario, tmp_path / "a.jsonl")
        events = load_checkpoints(tmp_path / "a.jsonl")
        result = diff_checkpoints(events, events[:-1])
        assert not result.identical
        assert result.divergence.reason == "missing_b"

    def test_store_source_round_trip(self, small_config, tmp_path):
        plan = plan_effectiveness_sweep(
            small_config, SPECS, RATES, TRIALS, base_seed=SEED, shard_trials=2
        )
        store = ShardStore(tmp_path / "store")
        run_campaign(plan, store, checkpoints=True)
        events = load_checkpoints(tmp_path / "store")
        assert len(events) > 0
        assert diff_checkpoints(events, events).identical

    def test_unreadable_source_raises(self, tmp_path):
        with pytest.raises(ValueError, match="not a trace file"):
            load_checkpoints(tmp_path)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="no checkpoint events"):
            load_checkpoints(empty)


class TestTolerantTraceRead:
    def _truncated_trace(self, scenario, tmp_path):
        path = tmp_path / "run.jsonl"
        with TraceRecorder(path) as trace:
            recorder = CheckpointRecorder(inner=trace)
            with use_recorder(recorder):
                run_trial(
                    scenario, _schemes(), 0.3, trial_generator(SEED, 0), trial_index=0
                )
        data = path.read_bytes()
        path.write_bytes(data[:-25])  # kill -9 mid final line
        return path

    def test_tolerant_read_counts_skipped(self, small_scenario, tmp_path):
        path = self._truncated_trace(small_scenario, tmp_path)
        with pytest.raises(ValueError):
            read_trace(path)
        records, skipped = read_trace_tolerant(path)
        assert skipped == 1
        assert records

    def test_summarize_survives_truncation(self, small_scenario, tmp_path):
        path = self._truncated_trace(small_scenario, tmp_path)
        summary = summarize_trace_file(path)
        assert summary["skipped_lines"] == 1
        assert summary["checkpoints"]  # digests still summarized


class TestInspect:
    def test_storyboard_structure_and_render(self, small_scenario, tmp_path):
        path = tmp_path / "run.jsonl"
        with TraceRecorder(path) as trace:
            recorder = CheckpointRecorder(inner=trace)
            with use_recorder(recorder):
                run_trials(small_scenario, _schemes(), 0.3, 2, base_seed=SEED)
        story = trial_storyboard(load_checkpoints(path), 1, rate=0.3)
        assert story["trial"] == 1
        (cell,) = story["rates"]
        assert cell["rate"] == 0.3
        assert cell["gain_table"]["optimal_snr"] > 0
        assert set(cell["schemes"]) == {"Random", "Proposed"}
        for scheme in cell["schemes"].values():
            assert scheme["selection"] is not None
            assert scheme["selection"]["probes"]
        assert set(cell["losses"]) == {"Random", "Proposed"}
        text = render_storyboard(story)
        assert "# Trial 1" in text
        assert "genie optimum" in text
        assert "| slot | tx | rx |" in text

    def test_unknown_trial_raises(self, small_scenario, tmp_path):
        path = tmp_path / "run.jsonl"
        with TraceRecorder(path) as trace:
            recorder = CheckpointRecorder(inner=trace)
            with use_recorder(recorder):
                run_trial(
                    small_scenario,
                    _schemes(),
                    0.3,
                    trial_generator(SEED, 0),
                    trial_index=0,
                )
        with pytest.raises(ValueError, match="no checkpoint events for trial 7"):
            trial_storyboard(load_checkpoints(path), 7)


class TestEventPayloadRoundTrip:
    def test_to_from_payload(self, small_scenario):
        recorder = CheckpointRecorder()
        with use_recorder(recorder):
            run_trial(
                small_scenario, _schemes(), 0.3, trial_generator(SEED, 0), trial_index=0
            )
        for event in recorder.events:
            payload = json.loads(json.dumps(event.to_payload()))
            rebuilt = CheckpointEvent.from_payload(payload)
            assert rebuilt.key == event.key
            assert rebuilt.digest == event.digest
            assert rebuilt.stage == event.stage
            assert rebuilt.arrays == event.arrays
