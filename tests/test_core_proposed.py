"""Tests for the proposed alignment scheme (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import AlignmentContext
from repro.core.policies import RoundRobinTxPolicy
from repro.core.proposed import ProposedAlignment
from repro.estimation.sample_covariance import BackProjectionEstimator
from repro.exceptions import ValidationError
from repro.measurement.budget import MeasurementBudget
from repro.measurement.measurer import MeasurementEngine
from repro.types import BeamPair


def _context(small_channel, tx_codebook, rx_codebook, rng, limit):
    engine = MeasurementEngine(small_channel, rng, fading_blocks=4)
    budget = MeasurementBudget(
        total_pairs=tx_codebook.num_beams * rx_codebook.num_beams, limit=limit
    )
    return AlignmentContext(tx_codebook, rx_codebook, engine, budget)


class TestConstruction:
    def test_invalid_j(self):
        with pytest.raises(ValidationError):
            ProposedAlignment(measurements_per_slot=0)

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            ProposedAlignment(signal_threshold=-1.0)

    def test_invalid_exploration(self):
        with pytest.raises(ValidationError):
            ProposedAlignment(exploration=1.5)


class TestSlotStructure:
    def test_budget_fully_spent(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, limit=30)
        result = ProposedAlignment(measurements_per_slot=8).align(context, rng)
        assert result.measurements_used == 30

    def test_slot_sizes_respected(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, limit=20)
        result = ProposedAlignment(measurements_per_slot=8).align(context, rng)
        # 20 = 8 + 8 + 4: three slots.
        assert len(result.slots) == 3
        sizes = [
            len(s.probe_rx_beams) + (1 if s.decided_rx_beam is not None else 0)
            for s in result.slots
        ]
        assert sizes == [8, 8, 4]

    def test_one_tx_beam_per_slot(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, limit=24)
        result = ProposedAlignment(measurements_per_slot=8).align(context, rng)
        for slot in result.slots:
            tx_beams = {
                m.pair.tx_index
                for m in result.trace
                if m.slot == slot.slot and m.pair is not None
            }
            assert tx_beams == {slot.tx_beam}

    def test_no_repeated_pairs(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, limit=40)
        result = ProposedAlignment().align(context, rng)
        pairs = [m.pair for m in result.trace]
        assert len(pairs) == len(set(pairs))

    def test_decided_beam_not_in_probes(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, limit=32)
        result = ProposedAlignment().align(context, rng)
        for slot in result.slots:
            if slot.decided_rx_beam is not None:
                assert slot.decided_rx_beam not in slot.probe_rx_beams

    def test_full_budget_measures_everything(self, small_channel, tx_codebook, rx_codebook, rng):
        total = tx_codebook.num_beams * rx_codebook.num_beams
        context = _context(small_channel, tx_codebook, rx_codebook, rng, limit=total)
        result = ProposedAlignment().align(context, rng)
        assert result.measurements_used == total
        assert len(result.measured_pairs()) == total


class TestBehaviour:
    def test_finds_good_pair_with_generous_budget(
        self, small_channel, tx_codebook, rx_codebook, rng
    ):
        from repro.sim.metrics import loss_from_matrix_db

        snr = small_channel.mean_snr_matrix(tx_codebook, rx_codebook)
        context = _context(small_channel, tx_codebook, rx_codebook, rng, limit=50)
        result = ProposedAlignment().align(context, rng)
        assert loss_from_matrix_db(snr, result.selected) < 6.0

    def test_custom_tx_policy(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, limit=24)
        result = ProposedAlignment(tx_policy=RoundRobinTxPolicy()).align(context, rng)
        assert [s.tx_beam for s in result.slots] == [0, 1, 2]

    def test_custom_estimator_factory(self, small_channel, tx_codebook, rx_codebook, rng):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, limit=16)
        algo = ProposedAlignment(estimator_factory=BackProjectionEstimator)
        result = algo.align(context, rng)
        assert result.measurements_used == 16

    def test_tiny_budget_single_measurement(
        self, small_channel, tx_codebook, rx_codebook, rng
    ):
        context = _context(small_channel, tx_codebook, rx_codebook, rng, limit=1)
        result = ProposedAlignment().align(context, rng)
        assert result.measurements_used == 1
        assert result.selected is not None

    def test_j_one_degenerates_gracefully(
        self, small_channel, tx_codebook, rx_codebook, rng
    ):
        """J=1: no probes, every slot is a single (random) measurement."""
        context = _context(small_channel, tx_codebook, rx_codebook, rng, limit=10)
        result = ProposedAlignment(measurements_per_slot=1).align(context, rng)
        assert result.measurements_used == 10

    def test_deterministic_given_rng(self, small_channel, tx_codebook, rx_codebook):
        results = []
        for _ in range(2):
            context = _context(
                small_channel, tx_codebook, rx_codebook, np.random.default_rng(5), limit=24
            )
            result = ProposedAlignment().align(context, np.random.default_rng(6))
            results.append(result.selected)
        assert results[0] == results[1]
